//! Power spectral density estimation: periodogram, Welch averaging and
//! Lomb–Scargle for unevenly sampled series (RR intervals).

use crate::error::DspError;
use crate::fft::{next_pow2, rfft};
use crate::window::WindowKind;
use std::f64::consts::PI;

/// A one-sided PSD estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Spectrum {
    /// Frequency grid in Hz (ascending, starting at 0 or the first Lomb
    /// frequency).
    pub freqs: Vec<f64>,
    /// Power density at each frequency, in signal-units²/Hz.
    pub power: Vec<f64>,
}

impl Spectrum {
    /// Total power in the band `[lo, hi)` Hz, integrated with the trapezoid
    /// rule over the stored grid.
    pub fn band_power(&self, lo: f64, hi: f64) -> f64 {
        let mut acc = 0.0;
        for i in 1..self.freqs.len() {
            let f0 = self.freqs[i - 1];
            let f1 = self.freqs[i];
            if f1 <= lo || f0 >= hi {
                continue;
            }
            // Clip the trapezoid to the band.
            let a = f0.max(lo);
            let b = f1.min(hi);
            if b <= a {
                continue;
            }
            // Linear interpolation of power at the clipped edges.
            let t0 = (a - f0) / (f1 - f0);
            let t1 = (b - f0) / (f1 - f0);
            let p0 = self.power[i - 1] + (self.power[i] - self.power[i - 1]) * t0;
            let p1 = self.power[i - 1] + (self.power[i] - self.power[i - 1]) * t1;
            acc += 0.5 * (p0 + p1) * (b - a);
        }
        acc
    }

    /// Total power over the whole estimated band.
    pub fn total_power(&self) -> f64 {
        match (self.freqs.first(), self.freqs.last()) {
            (Some(&lo), Some(&hi)) => self.band_power(lo, hi + f64::EPSILON),
            _ => 0.0,
        }
    }

    /// Frequency of the maximum power bin; `None` on an empty spectrum.
    pub fn peak_frequency(&self) -> Option<f64> {
        crate::stats::argmax(&self.power).map(|i| self.freqs[i])
    }
}

/// One-sided periodogram of an evenly sampled signal.
///
/// The signal is detrended (mean removal), windowed, zero-padded to a power
/// of two and scaled so that the integral of the PSD approximates the signal
/// variance.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] for signals with fewer than 4 samples and
/// [`DspError::InvalidParameter`] for non-positive `fs`.
pub fn periodogram(signal: &[f64], fs: f64, window: WindowKind) -> Result<Spectrum, DspError> {
    if signal.len() < 4 {
        return Err(DspError::TooShort {
            needed: 4,
            got: signal.len(),
        });
    }
    if fs <= 0.0 {
        return Err(DspError::InvalidParameter {
            name: "fs",
            reason: "must be positive",
        });
    }
    let m = crate::stats::mean(signal);
    let mut buf: Vec<f64> = signal.iter().map(|v| v - m).collect();
    let wpow = window.apply(&mut buf);
    let nfft = next_pow2(buf.len());
    let spec = rfft(&buf);
    let nbins = nfft / 2 + 1;
    let scale = 1.0 / (fs * wpow);
    let mut power = Vec::with_capacity(nbins);
    let mut freqs = Vec::with_capacity(nbins);
    for (k, s) in spec.iter().take(nbins).enumerate() {
        let mut p = s.norm_sqr() * scale;
        // One-sided: double everything except DC and Nyquist.
        if k != 0 && k != nfft / 2 {
            p *= 2.0;
        }
        power.push(p);
        freqs.push(k as f64 * fs / nfft as f64);
    }
    Ok(Spectrum { freqs, power })
}

/// Welch's method: averaged periodograms of `nperseg`-sample segments with
/// `overlap` fractional overlap in `[0, 1)`.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when the signal is shorter than `nperseg`,
/// and [`DspError::InvalidParameter`] for bad `overlap`/`nperseg`/`fs`.
pub fn welch(
    signal: &[f64],
    fs: f64,
    nperseg: usize,
    overlap: f64,
    window: WindowKind,
) -> Result<Spectrum, DspError> {
    if nperseg < 4 {
        return Err(DspError::InvalidParameter {
            name: "nperseg",
            reason: "must be >= 4",
        });
    }
    if !(0.0..1.0).contains(&overlap) {
        return Err(DspError::InvalidParameter {
            name: "overlap",
            reason: "must be in [0,1)",
        });
    }
    if signal.len() < nperseg {
        return Err(DspError::TooShort {
            needed: nperseg,
            got: signal.len(),
        });
    }
    let step = ((nperseg as f64) * (1.0 - overlap)).max(1.0) as usize;
    let mut acc: Option<Spectrum> = None;
    let mut count = 0usize;
    let mut start = 0usize;
    while start + nperseg <= signal.len() {
        let seg = &signal[start..start + nperseg];
        let p = periodogram(seg, fs, window)?;
        match &mut acc {
            None => acc = Some(p),
            Some(a) => {
                for (ap, sp) in a.power.iter_mut().zip(p.power.iter()) {
                    *ap += sp;
                }
            }
        }
        count += 1;
        start += step;
    }
    let mut out = acc.expect("at least one segment fits by the length check");
    for p in &mut out.power {
        *p /= count as f64;
    }
    Ok(out)
}

/// Lomb–Scargle normalised periodogram for unevenly sampled data, evaluated
/// on `freqs` (Hz). Used for RR-interval (tachogram) spectra where samples
/// arrive at beat times.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] when `t` and `y` differ in length,
/// [`DspError::TooShort`] for fewer than 4 samples and
/// [`DspError::InvalidParameter`] for an empty frequency grid.
pub fn lomb_scargle(t: &[f64], y: &[f64], freqs: &[f64]) -> Result<Spectrum, DspError> {
    if t.len() != y.len() {
        return Err(DspError::LengthMismatch {
            left: t.len(),
            right: y.len(),
        });
    }
    if t.len() < 4 {
        return Err(DspError::TooShort {
            needed: 4,
            got: t.len(),
        });
    }
    if freqs.is_empty() {
        return Err(DspError::InvalidParameter {
            name: "freqs",
            reason: "must be non-empty",
        });
    }
    let my = crate::stats::mean(y);
    let vy = crate::stats::sample_variance(y);
    let yc: Vec<f64> = y.iter().map(|v| v - my).collect();
    let mut power = Vec::with_capacity(freqs.len());
    for &f in freqs {
        if f <= 0.0 {
            power.push(0.0);
            continue;
        }
        let w = 2.0 * PI * f;
        // Time offset tau that makes the basis orthogonal.
        let (mut s2, mut c2) = (0.0, 0.0);
        for &ti in t {
            s2 += (2.0 * w * ti).sin();
            c2 += (2.0 * w * ti).cos();
        }
        let tau = (s2.atan2(c2)) / (2.0 * w);
        let (mut cs, mut cc, mut ss, mut sc) = (0.0, 0.0, 0.0, 0.0);
        for (&ti, &yi) in t.iter().zip(yc.iter()) {
            let arg = w * (ti - tau);
            let c = arg.cos();
            let s = arg.sin();
            cs += yi * c;
            sc += yi * s;
            cc += c * c;
            ss += s * s;
        }
        let p = if vy > 0.0 && cc > 0.0 && ss > 0.0 {
            0.5 * (cs * cs / cc + sc * sc / ss) / vy
        } else {
            0.0
        };
        power.push(p);
    }
    Ok(Spectrum {
        freqs: freqs.to_vec(),
        power,
    })
}

/// Builds a linear frequency grid `[lo, hi]` with `n` points.
pub fn linspace(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (n - 1) as f64;
    (0..n).map(|i| lo + step * i as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(fs: f64, f: f64, n: usize, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn periodogram_finds_tone() {
        let fs = 64.0;
        let sig = tone(fs, 8.0, 512, 1.0);
        let spec = periodogram(&sig, fs, WindowKind::Hann).unwrap();
        let peak = spec.peak_frequency().unwrap();
        assert!((peak - 8.0).abs() < 0.5, "peak at {peak}");
    }

    #[test]
    fn periodogram_power_approximates_variance() {
        let fs = 32.0;
        let sig = tone(fs, 4.0, 1024, 2.0); // variance = amp^2/2 = 2.0
        let spec = periodogram(&sig, fs, WindowKind::Hann).unwrap();
        let total = spec.total_power();
        assert!((total - 2.0).abs() / 2.0 < 0.1, "total {total}");
    }

    #[test]
    fn periodogram_rejects_bad_inputs() {
        assert!(periodogram(&[1.0, 2.0], 10.0, WindowKind::Hann).is_err());
        assert!(periodogram(&[1.0; 8], 0.0, WindowKind::Hann).is_err());
    }

    #[test]
    fn band_power_splits_two_tones() {
        let fs = 64.0;
        let n = 2048;
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (2.0 * PI * 4.0 * t).sin() + 3.0 * (2.0 * PI * 12.0 * t).sin()
            })
            .collect();
        let spec = periodogram(&sig, fs, WindowKind::Hann).unwrap();
        let low = spec.band_power(2.0, 6.0);
        let high = spec.band_power(10.0, 14.0);
        // amp 1 vs amp 3 -> power ratio 9.
        assert!((high / low - 9.0).abs() < 1.5, "ratio {}", high / low);
    }

    #[test]
    fn welch_reduces_variance_of_estimate() {
        // White noise: Welch estimate should be flatter than the raw
        // periodogram. Compare coefficient of variation across bins.
        let mut seed = 0x12345678u64;
        let mut rand = || {
            // xorshift
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed as f64 / u64::MAX as f64) - 0.5
        };
        let sig: Vec<f64> = (0..4096).map(|_| rand()).collect();
        let fs = 100.0;
        let raw = periodogram(&sig, fs, WindowKind::Hann).unwrap();
        let wel = welch(&sig, fs, 256, 0.5, WindowKind::Hann).unwrap();
        let cv = |s: &Spectrum| {
            let m = crate::stats::mean(&s.power[1..]);
            crate::stats::std_dev(&s.power[1..]) / m
        };
        assert!(cv(&wel) < cv(&raw) * 0.5);
    }

    #[test]
    fn welch_validates_parameters() {
        let sig = vec![0.0; 100];
        assert!(welch(&sig, 10.0, 2, 0.5, WindowKind::Hann).is_err());
        assert!(welch(&sig, 10.0, 64, 1.0, WindowKind::Hann).is_err());
        assert!(welch(&sig, 10.0, 128, 0.5, WindowKind::Hann).is_err());
    }

    #[test]
    fn lomb_scargle_finds_tone_in_uneven_samples() {
        // Jittered sampling times.
        let mut seed = 99u64;
        let mut rand = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed as f64 / u64::MAX as f64
        };
        let f0 = 0.25; // Hz (HRV-like)
        let t: Vec<f64> = (0..400).map(|i| i as f64 * 0.8 + 0.3 * rand()).collect();
        let y: Vec<f64> = t.iter().map(|&ti| (2.0 * PI * f0 * ti).sin()).collect();
        let freqs = linspace(0.01, 0.5, 200);
        let spec = lomb_scargle(&t, &y, &freqs).unwrap();
        let peak = spec.peak_frequency().unwrap();
        assert!((peak - f0).abs() < 0.02, "peak {peak}");
    }

    #[test]
    fn lomb_scargle_validates() {
        assert!(lomb_scargle(&[1.0, 2.0], &[1.0], &[0.1]).is_err());
        assert!(lomb_scargle(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], &[0.1]).is_err());
        let t = [0.0, 1.0, 2.0, 3.0];
        assert!(lomb_scargle(&t, &[0.0; 4], &[]).is_err());
    }

    #[test]
    fn band_power_clipping() {
        let spec = Spectrum {
            freqs: vec![0.0, 1.0, 2.0],
            power: vec![1.0, 1.0, 1.0],
        };
        assert!((spec.band_power(0.0, 2.0) - 2.0).abs() < 1e-12);
        assert!((spec.band_power(0.5, 1.5) - 1.0).abs() < 1e-12);
        assert_eq!(spec.band_power(3.0, 4.0), 0.0);
        assert_eq!(spec.band_power(1.0, 1.0), 0.0);
    }

    #[test]
    fn linspace_edges() {
        assert!(linspace(0.0, 1.0, 0).is_empty());
        assert_eq!(linspace(2.0, 9.0, 1), vec![2.0]);
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
    }
}
