//! Auto-regressive modelling: autocorrelation, Levinson–Durbin recursion,
//! Burg's method, and the AR model power spectrum.
//!
//! The paper's feature set (features 16–24) uses the linear coefficients of
//! an AR model fitted to the ECG-derived respiration (EDR) series.

use crate::error::DspError;
use std::f64::consts::PI;

/// A fitted auto-regressive model
/// `x[n] = -(a[1] x[n-1] + ... + a[p] x[n-p]) + e[n]`.
///
/// Coefficient convention matches MATLAB `aryule`/`arburg`: `a[0] == 1` is
/// implicit and **not** stored; `coeffs[k]` is `a[k+1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ArModel {
    /// AR coefficients `a[1] ..= a[p]`.
    pub coeffs: Vec<f64>,
    /// Variance of the driving white noise (prediction error power).
    pub noise_variance: f64,
    /// Reflection coefficients (PARCOR) produced by the recursion.
    pub reflection: Vec<f64>,
}

impl ArModel {
    /// Model order `p`.
    pub fn order(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluates the model PSD at frequency `f` for sampling rate `fs`:
    /// `S(f) = sigma^2 / |1 + sum_k a_k e^{-j 2 pi f k / fs}|^2 / fs`.
    pub fn psd_at(&self, f: f64, fs: f64) -> f64 {
        let w = 2.0 * PI * f / fs;
        let mut re = 1.0;
        let mut im = 0.0;
        for (k, &a) in self.coeffs.iter().enumerate() {
            let ang = w * (k + 1) as f64;
            re += a * ang.cos();
            im -= a * ang.sin();
        }
        self.noise_variance / (re * re + im * im) / fs
    }

    /// Whether the AR model is stable (all reflection coefficients within
    /// the unit circle). Stable models produce bounded predictions.
    pub fn is_stable(&self) -> bool {
        self.reflection.iter().all(|k| k.abs() < 1.0)
    }

    /// One-step linear prediction of `x[n]` from `p` past samples
    /// (`past[0]` is the most recent sample `x[n-1]`).
    ///
    /// # Panics
    ///
    /// Panics if `past.len() < self.order()`.
    pub fn predict(&self, past: &[f64]) -> f64 {
        assert!(
            past.len() >= self.order(),
            "need {} past samples",
            self.order()
        );
        -self
            .coeffs
            .iter()
            .zip(past.iter())
            .map(|(&a, &x)| a * x)
            .sum::<f64>()
    }
}

/// Biased autocorrelation estimate `r[0..=max_lag]` (normalised by `n`).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] for an empty signal and
/// [`DspError::InvalidParameter`] when `max_lag >= n`.
pub fn autocorrelation(x: &[f64], max_lag: usize) -> Result<Vec<f64>, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if max_lag >= x.len() {
        return Err(DspError::InvalidParameter {
            name: "max_lag",
            reason: "must be smaller than the signal length",
        });
    }
    let n = x.len();
    let mut r = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let mut acc = 0.0;
        for i in 0..n - lag {
            acc += x[i] * x[i + lag];
        }
        r.push(acc / n as f64);
    }
    Ok(r)
}

/// Levinson–Durbin recursion solving the Yule–Walker equations for the
/// autocorrelation sequence `r` (with `r[0]` the zero-lag term) at the given
/// `order`.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when `r.len() < order + 1` and
/// [`DspError::Numerical`] when the prediction error collapses to zero
/// (perfectly predictable / degenerate input).
pub fn levinson_durbin(r: &[f64], order: usize) -> Result<ArModel, DspError> {
    if r.len() < order + 1 {
        return Err(DspError::TooShort {
            needed: order + 1,
            got: r.len(),
        });
    }
    if order == 0 {
        return Ok(ArModel {
            coeffs: vec![],
            noise_variance: r[0],
            reflection: vec![],
        });
    }
    let mut a = vec![0.0f64; order + 1];
    a[0] = 1.0;
    let mut e = r[0];
    let mut reflection = Vec::with_capacity(order);
    if e <= 0.0 {
        return Err(DspError::Numerical("zero-power signal in levinson-durbin"));
    }
    for m in 1..=order {
        let mut acc = r[m];
        for k in 1..m {
            acc += a[k] * r[m - k];
        }
        let kappa = -acc / e;
        reflection.push(kappa);
        // Update coefficients symmetrically.
        let prev = a.clone();
        a[m] = kappa;
        for k in 1..m {
            a[k] = prev[k] + kappa * prev[m - k];
        }
        e *= 1.0 - kappa * kappa;
        if e <= f64::EPSILON * r[0] {
            // Perfectly predictable signal; clamp and stop refining.
            e = e.max(0.0);
            break;
        }
    }
    Ok(ArModel {
        coeffs: a[1..=order].to_vec(),
        noise_variance: e,
        reflection,
    })
}

/// Yule–Walker AR estimation: biased autocorrelation followed by
/// Levinson–Durbin.
///
/// # Errors
///
/// Propagates errors from [`autocorrelation`] and [`levinson_durbin`]; also
/// rejects signals shorter than `2 * order`.
pub fn yule_walker(x: &[f64], order: usize) -> Result<ArModel, DspError> {
    if x.len() < 2 * order {
        return Err(DspError::TooShort {
            needed: 2 * order,
            got: x.len(),
        });
    }
    let m = crate::stats::mean(x);
    let centred: Vec<f64> = x.iter().map(|v| v - m).collect();
    let r = autocorrelation(&centred, order)?;
    levinson_durbin(&r, order)
}

/// Burg's method: minimises forward+backward prediction error; better
/// short-record behaviour than Yule–Walker, which is why the EDR features
/// use it by default.
///
/// # Errors
///
/// Returns [`DspError::TooShort`] when `x.len() <= order + 1` and
/// [`DspError::Numerical`] on degenerate (zero-power) input.
pub fn burg(x: &[f64], order: usize) -> Result<ArModel, DspError> {
    if x.len() <= order + 1 {
        return Err(DspError::TooShort {
            needed: order + 2,
            got: x.len(),
        });
    }
    let m = crate::stats::mean(x);
    let n = x.len();
    let mut f: Vec<f64> = x.iter().map(|v| v - m).collect(); // forward errors
    let mut b = f.clone(); // backward errors
    let mut a = vec![0.0f64; order + 1];
    a[0] = 1.0;
    let mut e: f64 = f.iter().map(|v| v * v).sum::<f64>() / n as f64;
    if e <= 0.0 {
        return Err(DspError::Numerical("zero-power signal in burg"));
    }
    let mut reflection = Vec::with_capacity(order);
    let mut prev = vec![0.0f64; order + 1];
    for m_ord in 1..=order {
        // kappa = -2 sum f[i] b[i-1] / sum (f[i]^2 + b[i-1]^2)
        let mut num = 0.0;
        let mut den = 0.0;
        for i in m_ord..n {
            num += f[i] * b[i - 1];
            den += f[i] * f[i] + b[i - 1] * b[i - 1];
        }
        let kappa = if den > 0.0 { -2.0 * num / den } else { 0.0 };
        reflection.push(kappa);
        prev.copy_from_slice(&a);
        a[m_ord] = kappa;
        for k in 1..m_ord {
            a[k] = prev[k] + kappa * prev[m_ord - k];
        }
        // Update error sequences (in place, iterating from the end to keep
        // b[i-1] values from being clobbered is not needed if we save them).
        for i in (m_ord..n).rev() {
            let fi = f[i];
            let bi = b[i - 1];
            f[i] = fi + kappa * bi;
            b[i] = bi + kappa * fi;
        }
        e *= 1.0 - kappa * kappa;
        if e <= 0.0 {
            e = 0.0;
            break;
        }
    }
    Ok(ArModel {
        coeffs: a[1..=order].to_vec(),
        noise_variance: e,
        reflection,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates an AR(2) process with known coefficients.
    fn ar2_process(a1: f64, a2: f64, n: usize, seed: u64) -> Vec<f64> {
        let mut s = seed;
        let mut rand = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            // Approximate N(0,1) by sum of 12 uniforms - 6.
            (0..12)
                .map(|_| {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    (s >> 11) as f64 / (1u64 << 53) as f64
                })
                .sum::<f64>()
                - 6.0
        };
        let mut x = vec![0.0f64; n + 200];
        for i in 2..x.len() {
            x[i] = -a1 * x[i - 1] - a2 * x[i - 2] + rand();
        }
        x.split_off(200)
    }

    #[test]
    fn autocorrelation_lag0_is_power() {
        let x = [1.0, -1.0, 1.0, -1.0];
        let r = autocorrelation(&x, 1).unwrap();
        assert!((r[0] - 1.0).abs() < 1e-12);
        assert!((r[1] - (-0.75)).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_validates() {
        assert!(autocorrelation(&[], 0).is_err());
        assert!(autocorrelation(&[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn yule_walker_recovers_ar2() {
        let (a1, a2) = (-1.2, 0.5);
        let x = ar2_process(a1, a2, 20_000, 42);
        let model = yule_walker(&x, 2).unwrap();
        assert!((model.coeffs[0] - a1).abs() < 0.05, "{:?}", model.coeffs);
        assert!((model.coeffs[1] - a2).abs() < 0.05, "{:?}", model.coeffs);
        assert!(model.is_stable());
    }

    #[test]
    fn burg_recovers_ar2() {
        let (a1, a2) = (-1.2, 0.5);
        let x = ar2_process(a1, a2, 20_000, 7);
        let model = burg(&x, 2).unwrap();
        assert!((model.coeffs[0] - a1).abs() < 0.05, "{:?}", model.coeffs);
        assert!((model.coeffs[1] - a2).abs() < 0.05, "{:?}", model.coeffs);
        assert!(model.is_stable());
        assert!(model.noise_variance > 0.5 && model.noise_variance < 2.0);
    }

    #[test]
    fn burg_on_short_window_still_reasonable() {
        let (a1, a2) = (-1.2, 0.5);
        let x = ar2_process(a1, a2, 120, 3);
        let model = burg(&x, 2).unwrap();
        assert!((model.coeffs[0] - a1).abs() < 0.3);
        assert!((model.coeffs[1] - a2).abs() < 0.3);
    }

    #[test]
    fn order_zero_model() {
        let x = [1.0, 2.0, 3.0, 2.0, 1.0, 2.0, 3.0, 2.0];
        let r = autocorrelation(&x, 0).unwrap();
        let m = levinson_durbin(&r, 0).unwrap();
        assert!(m.coeffs.is_empty());
        assert!(m.noise_variance > 0.0);
        assert!(m.is_stable());
    }

    #[test]
    fn degenerate_input_is_an_error() {
        assert!(matches!(burg(&[0.0; 32], 4), Err(DspError::Numerical(_))));
        let r = vec![0.0; 5];
        assert!(matches!(
            levinson_durbin(&r, 4),
            Err(DspError::Numerical(_))
        ));
    }

    #[test]
    fn too_short_inputs_error() {
        assert!(burg(&[1.0, 2.0], 4).is_err());
        assert!(yule_walker(&[1.0, 2.0, 3.0], 4).is_err());
        assert!(levinson_durbin(&[1.0, 0.5], 4).is_err());
    }

    #[test]
    fn psd_peaks_at_resonance() {
        // AR(2) with complex poles near f0 makes a spectral peak there.
        let fs = 4.0;
        let f0 = 0.9; // Hz
        let r_pole = 0.95;
        let theta = 2.0 * PI * f0 / fs;
        let a1 = -2.0 * r_pole * theta.cos();
        let a2 = r_pole * r_pole;
        let model = ArModel {
            coeffs: vec![a1, a2],
            noise_variance: 1.0,
            reflection: vec![],
        };
        let freqs: Vec<f64> = (1..200).map(|i| i as f64 * fs / 2.0 / 200.0).collect();
        let powers: Vec<f64> = freqs.iter().map(|&f| model.psd_at(f, fs)).collect();
        let peak_f = freqs[crate::stats::argmax(&powers).unwrap()];
        assert!((peak_f - f0).abs() < 0.05, "peak at {peak_f}");
    }

    #[test]
    fn predict_uses_coefficients() {
        let model = ArModel {
            coeffs: vec![-0.9],
            noise_variance: 1.0,
            reflection: vec![-0.9],
        };
        // x[n] ~= 0.9 * x[n-1]
        assert!((model.predict(&[2.0]) - 1.8).abs() < 1e-12);
    }

    #[test]
    fn burg_and_yule_walker_agree_on_long_records() {
        let x = ar2_process(-0.8, 0.2, 50_000, 11);
        let mb = burg(&x, 2).unwrap();
        let my = yule_walker(&x, 2).unwrap();
        for (b, y) in mb.coeffs.iter().zip(my.coeffs.iter()) {
            assert!((b - y).abs() < 0.02);
        }
    }
}
