//! Error type shared by the `biodsp` modules.

use std::fmt;

/// Errors produced by DSP routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DspError {
    /// The input slice is empty but the operation needs at least one sample.
    EmptyInput,
    /// The input is shorter than the minimum length required.
    TooShort {
        /// Samples required by the operation.
        needed: usize,
        /// Samples actually provided.
        got: usize,
    },
    /// A parameter is outside its admissible range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: &'static str,
    },
    /// Two inputs that must have equal lengths differ.
    LengthMismatch {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A numerical routine failed to converge or produced a degenerate value.
    Numerical(&'static str),
}

impl fmt::Display for DspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DspError::EmptyInput => write!(f, "input signal is empty"),
            DspError::TooShort { needed, got } => {
                write!(f, "input too short: need {needed} samples, got {got}")
            }
            DspError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            DspError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            DspError::Numerical(what) => write!(f, "numerical failure: {what}"),
        }
    }
}

impl std::error::Error for DspError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let variants = [
            DspError::EmptyInput,
            DspError::TooShort { needed: 4, got: 1 },
            DspError::InvalidParameter {
                name: "fc",
                reason: "must be < fs/2",
            },
            DspError::LengthMismatch { left: 3, right: 5 },
            DspError::Numerical("singular matrix"),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DspError>();
    }
}
