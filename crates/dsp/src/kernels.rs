//! Fused DSP micro-kernels — the extraction counterpart of
//! `seizure_core::kernels`.
//!
//! The feature-extraction front end (filtfilt → Pan–Tompkins →
//! PSD) used to run as a sequence of whole-buffer sweeps: one pass per
//! biquad section per direction, then three more passes (derivative,
//! squaring, moving-window integration) with three intermediate buffers.
//! At ~5k windows/s that chain — not classification — was the fleet
//! throughput wall. This module collapses those sweeps:
//!
//! - [`sos_chain_in_place`] / [`sos_chain_reverse_in_place`] run *all*
//!   biquad sections chained through registers per sample (const-generic
//!   specialisation for 1–4 sections, 4×-unrolled over contiguous
//!   chunks), so an N-section cascade costs one memory sweep instead of
//!   N. Per-section recurrences are evaluated with exactly the
//!   expression ordering of [`crate::filter::Biquad::filter_in_place`],
//!   so the fused chain is **bit-identical** to the per-section sweeps.
//! - [`filtfilt_fused`] is the zero-phase forward–backward pass on top:
//!   the backward pass iterates in reverse instead of physically
//!   reversing the buffer twice (same arithmetic, same bits).
//! - [`qrs_energy_into`] fuses derivative → squaring → moving-window
//!   integration into one pass with a `win`-sample ring buffer instead
//!   of two full-signal intermediates, preserving the accumulator
//!   ordering of the staged implementation (add the incoming squared
//!   sample, then retire the outgoing one) — bit-identical again.
//! - [`RfftPlan`] is a planned real-input FFT: half-size complex
//!   transform plus conjugate-symmetry untangling, with precomputed
//!   twiddle tables, emitting one-sided bin powers directly. Roughly
//!   half the work of the zero-padded full complex FFT it replaces; the
//!   swap is *not* bit-identical (different butterfly ordering and
//!   table-exact twiddles) and is tolerance-pinned by the
//!   `dsp_kernel_equivalence` suite instead.
//!
//! Everything is generic over [`Scalar`] (`f64`/`f32`): the opt-in
//! [`ExtractPrecision::F32`] extraction path runs these same kernels in
//! single precision. Plain mul/add only — no FMA contraction — so the
//! `f64` instantiation reproduces the scalar reference expressions bit
//! for bit.

// lint: allow-file(hot-index) — fused-kernel idiom: subscripts are ring/window
// offsets whose bounds are established once at entry (length asserts, `min`
// clamps); hoisting each access would defeat the chain fusion.
use std::cmp::Ordering;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// Numeric precision of the extraction compute path.
///
/// Threaded from `FleetConfig`/`StreamConfig` through `WindowExtractor`
/// down to the filter/QRS/PSD hot loops. [`ExtractPrecision::F64`] (the
/// default) is bit-identical to the historical pipeline;
/// [`ExtractPrecision::F32`] runs the sample-rate hot loops in single
/// precision — faster, tolerance-pinned against the `f64` reference on a
/// real cohort with classification-identical decisions (see the
/// `dsp_kernel_equivalence` suite). Beat-rate stages (RR cleaning, EDR
/// resampling, HRV/Lorenz/Burg statistics) always run in `f64`; their
/// cost is negligible and keeping them double-precision bounds the f32
/// path's feature error to the filter/QRS/PSD stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExtractPrecision {
    /// Double precision — bit-identical to the pre-kernel pipeline.
    #[default]
    F64,
    /// Single-precision hot loops — opt-in fast path.
    F32,
}

/// Scalar element the fused kernels are generic over (`f64` or `f32`).
///
/// Deliberately minimal: plain arithmetic plus conversions. No `mul_add`
/// — Rust does not contract `a * b + c` into FMA, and the kernels must
/// reproduce the scalar reference expressions exactly at `f64`.
pub trait Scalar:
    Copy
    + Default
    + PartialOrd
    + std::fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Negative infinity, the identity of [`Scalar::maxv`].
    const NEG_INFINITY: Self;
    /// Conversion from `f64` (rounds for `f32`).
    fn from_f64(v: f64) -> Self;
    /// Widening conversion to `f64` (exact for both instantiations).
    fn to_f64(self) -> f64;
    /// IEEE 754 total order, mirroring `f64::total_cmp`.
    fn total_cmp(&self, other: &Self) -> Ordering;
    /// NaN-ignoring maximum, mirroring `f64::max`.
    fn maxv(self, other: Self) -> Self;
    /// Monotone unsigned key for the IEEE total order:
    /// `a.total_cmp(&b) == a.sort_key().cmp(&b.sort_key())` for every pair,
    /// NaNs and signed zeros included. Sorting packed `(key, payload)`
    /// integers compares registers instead of chasing floats through the
    /// cache, which is what makes the peak filter's sort cheap.
    fn sort_key(self) -> u64;
    /// A `(descending sort key, index)` candidate packed into the
    /// narrowest integer that holds both: `u64` for `f32` (32-bit key),
    /// `(u64, usize)` for `f64`. Ascending `Ord` on the packed value is
    /// descending IEEE total order on the sample value with ascending
    /// index as the tie-break.
    type Packed: Copy + Ord + Default;
    /// Packs `(!self.sort_key(), index)` into [`Scalar::Packed`].
    fn pack_desc(self, index: usize) -> Self::Packed;
    /// Recovers the index from a packed candidate.
    fn unpack_index(packed: Self::Packed) -> usize;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f64::NEG_INFINITY;
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline(always)]
    fn total_cmp(&self, other: &Self) -> Ordering {
        f64::total_cmp(self, other)
    }
    #[inline(always)]
    fn maxv(self, other: Self) -> Self {
        f64::max(self, other)
    }
    #[inline(always)]
    fn sort_key(self) -> u64 {
        // Same bit manipulation as `f64::total_cmp`: flip the magnitude
        // bits of negative values so the integer order matches the IEEE
        // total order, then flip the sign bit for an unsigned compare.
        let b = self.to_bits() as i64;
        ((b ^ (((b >> 63) as u64) >> 1) as i64) as u64) ^ (1 << 63)
    }
    type Packed = (u64, usize);
    #[inline(always)]
    fn pack_desc(self, index: usize) -> Self::Packed {
        (!self.sort_key(), index)
    }
    #[inline(always)]
    fn unpack_index(packed: Self::Packed) -> usize {
        packed.1
    }
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_INFINITY: Self = f32::NEG_INFINITY;
    #[inline(always)]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
    #[inline(always)]
    fn total_cmp(&self, other: &Self) -> Ordering {
        f32::total_cmp(self, other)
    }
    #[inline(always)]
    fn maxv(self, other: Self) -> Self {
        f32::max(self, other)
    }
    #[inline(always)]
    fn sort_key(self) -> u64 {
        // `f32::total_cmp`'s bit trick; zero-extension to u64 preserves
        // the u32 order.
        let b = self.to_bits() as i32;
        u64::from(((b ^ (((b >> 31) as u32) >> 1) as i32) as u32) ^ (1 << 31))
    }
    /// 32-bit key and 32-bit index share one word — the candidate sort
    /// compares single registers. Signal windows are far below `u32::MAX`
    /// samples.
    type Packed = u64;
    #[inline(always)]
    fn pack_desc(self, index: usize) -> Self::Packed {
        ((!self.sort_key()) << 32) | index as u64
    }
    #[inline(always)]
    fn unpack_index(packed: Self::Packed) -> usize {
        (packed & 0xFFFF_FFFF) as usize
    }
}

/// Maximum cascade length the register-chained kernels accept; longer
/// cascades fall back to per-section sweeps at the call site (the
/// Pan–Tompkins band-pass has 2 sections).
pub const MAX_CHAIN_SECTIONS: usize = 8;

/// One biquad section's coefficients at precision `T` (direct form I,
/// `a0` normalised to 1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SosSection<T> {
    /// Feed-forward `b0`.
    pub b0: T,
    /// Feed-forward `b1`.
    pub b1: T,
    /// Feed-forward `b2`.
    pub b2: T,
    /// Feedback `a1`.
    pub a1: T,
    /// Feedback `a2`.
    pub a2: T,
}

impl<T: Scalar> SosSection<T> {
    /// Converts `f64` design coefficients (`b`, `a1..a2`) to precision
    /// `T`.
    pub fn from_f64(b: [f64; 3], a: [f64; 2]) -> Self {
        SosSection {
            b0: T::from_f64(b[0]),
            b1: T::from_f64(b[1]),
            b2: T::from_f64(b[2]),
            a1: T::from_f64(a[0]),
            a2: T::from_f64(a[1]),
        }
    }
}

/// Direct-form-I delay state of one section.
#[derive(Debug, Clone, Copy, Default)]
struct SosState<T> {
    x1: T,
    x2: T,
    y1: T,
    y2: T,
}

/// One sample through a K-section chain held entirely in registers.
/// The per-section expression matches `Biquad::filter_in_place` exactly
/// (left-to-right sums, no contraction), so chaining per sample instead
/// of sweeping per section changes nothing numerically: each section
/// sees the identical input sequence either way.
#[inline(always)]
fn chain_step<T: Scalar, const K: usize>(
    secs: &[SosSection<T>; K],
    st: &mut [SosState<T>; K],
    xi: T,
) -> T {
    let mut v = xi;
    let mut k = 0;
    while k < K {
        let s = &secs[k];
        let q = &mut st[k];
        let yi = s.b0 * v + s.b1 * q.x1 + s.b2 * q.x2 - s.a1 * q.y1 - s.a2 * q.y2;
        q.x2 = q.x1;
        q.x1 = v;
        q.y2 = q.y1;
        q.y1 = yi;
        v = yi;
        k += 1;
    }
    v
}

/// Forward fused sweep at a monomorphised section count.
fn chain_forward<T: Scalar, const K: usize>(secs: &[SosSection<T>; K], x: &mut [T]) {
    let mut st = [SosState::<T>::default(); K];
    let mut chunks = x.chunks_exact_mut(4);
    for c in &mut chunks {
        c[0] = chain_step(secs, &mut st, c[0]);
        c[1] = chain_step(secs, &mut st, c[1]);
        c[2] = chain_step(secs, &mut st, c[2]);
        c[3] = chain_step(secs, &mut st, c[3]);
    }
    for v in chunks.into_remainder() {
        *v = chain_step(secs, &mut st, *v);
    }
}

/// Backward fused sweep: iterates `x` from the end, which is exactly
/// "reverse, filter forward, reverse" without the two buffer flips.
fn chain_backward<T: Scalar, const K: usize>(secs: &[SosSection<T>; K], x: &mut [T]) {
    let mut st = [SosState::<T>::default(); K];
    let mut chunks = x.rchunks_exact_mut(4);
    for c in &mut chunks {
        c[3] = chain_step(secs, &mut st, c[3]);
        c[2] = chain_step(secs, &mut st, c[2]);
        c[1] = chain_step(secs, &mut st, c[1]);
        c[0] = chain_step(secs, &mut st, c[0]);
    }
    for v in chunks.into_remainder().iter_mut().rev() {
        *v = chain_step(secs, &mut st, *v);
    }
}

/// Converts a length-checked section slice into the fixed-size array
/// reference the monomorphised chain kernels take. Shared by the scalar
/// and lane dispatchers, which only call it from a match arm that just
/// proved `secs.len() == K`.
#[inline(always)]
pub(crate) fn sos_array<T: Scalar, const K: usize>(secs: &[SosSection<T>]) -> &[SosSection<T>; K] {
    // lint: allow(hot-panic) — the dispatch arm matched `secs.len() == K`.
    secs.try_into().expect("dispatch arm matched the length")
}

macro_rules! dispatch_chain {
    ($fn:ident, $secs:expr, $x:expr) => {
        match $secs.len() {
            0 => {}
            1 => $fn::<T, 1>(sos_array($secs), $x),
            2 => $fn::<T, 2>(sos_array($secs), $x),
            3 => $fn::<T, 3>(sos_array($secs), $x),
            4 => $fn::<T, 4>(sos_array($secs), $x),
            5 => $fn::<T, 5>(sos_array($secs), $x),
            6 => $fn::<T, 6>(sos_array($secs), $x),
            7 => $fn::<T, 7>(sos_array($secs), $x),
            8 => $fn::<T, 8>(sos_array($secs), $x),
            // lint: allow(hot-panic) — documented `# Panics` contract; longer cascades are a caller bug.
            n => panic!("sos chain supports at most {MAX_CHAIN_SECTIONS} sections, got {n}"),
        }
    };
}

/// Cascade-fused forward filtering: every section chained through
/// registers per sample, one sweep over `x`, zero initial state.
/// Bit-identical to filtering `x` through each section in turn.
///
/// # Panics
///
/// Panics when `secs.len() > MAX_CHAIN_SECTIONS`; callers with longer
/// cascades should sweep per section instead.
pub fn sos_chain_in_place<T: Scalar>(secs: &[SosSection<T>], x: &mut [T]) {
    dispatch_chain!(chain_forward, secs, x)
}

/// Cascade-fused *backward* filtering: processes `x` from last sample to
/// first with zero initial state. Bit-identical to reversing `x`,
/// running [`sos_chain_in_place`], and reversing again.
///
/// # Panics
///
/// Panics when `secs.len() > MAX_CHAIN_SECTIONS`.
pub fn sos_chain_reverse_in_place<T: Scalar>(secs: &[SosSection<T>], x: &mut [T]) {
    dispatch_chain!(chain_backward, secs, x)
}

/// Zero-phase forward–backward filtering with odd reflection padding
/// that leaves the result *inside* the padded work buffer: after the
/// call the `x.len()` filtered samples live at `ext[pad..pad + x.len()]`
/// and the returned value is `pad`. Callers that feed the filtered
/// signal straight into another kernel slice `ext` directly and skip the
/// copy-out that [`filtfilt_fused`] pays.
///
/// # Panics
///
/// Panics when `secs.len() > MAX_CHAIN_SECTIONS`.
pub fn filtfilt_fused_in_ext<T: Scalar>(
    secs: &[SosSection<T>],
    x: &[T],
    ext: &mut Vec<T>,
) -> usize {
    if x.is_empty() || secs.is_empty() {
        ext.clear();
        ext.extend_from_slice(x);
        return 0;
    }
    let two = T::from_f64(2.0);
    let pad = (6 * secs.len()).min(x.len() - 1).max(1);
    ext.clear();
    ext.reserve(x.len() + 2 * pad);
    for i in (1..=pad).rev() {
        ext.push(two * x[0] - x[i.min(x.len() - 1)]);
    }
    ext.extend_from_slice(x);
    let n = x.len();
    for i in 1..=pad {
        let idx = n.saturating_sub(1 + i.min(n - 1));
        ext.push(two * x[n - 1] - x[idx]);
    }
    sos_chain_in_place(secs, ext);
    sos_chain_reverse_in_place(secs, ext);
    pad
}

/// Zero-phase forward–backward filtering with odd reflection padding,
/// generic over precision. This is the fused engine under
/// [`crate::filter::SosCascade::filtfilt_into`] (which documents the
/// padding scheme); the `f32` instantiation backs the
/// [`ExtractPrecision::F32`] extraction path.
///
/// `ext` is the reusable padded work buffer, `out` receives the
/// `x.len()` filtered samples. Copy-free variant:
/// [`filtfilt_fused_in_ext`].
///
/// # Panics
///
/// Panics when `secs.len() > MAX_CHAIN_SECTIONS`.
pub fn filtfilt_fused<T: Scalar>(
    secs: &[SosSection<T>],
    x: &[T],
    ext: &mut Vec<T>,
    out: &mut Vec<T>,
) {
    let pad = filtfilt_fused_in_ext(secs, x, ext);
    out.clear();
    out.extend_from_slice(&ext[pad..pad + x.len()]);
}

/// [`filtfilt_fused_in_ext`] taking an `f64` input signal and narrowing
/// it to `T` while the padded extension is built, so a reduced-precision
/// caller pays no separate conversion pass (and keeps no converted copy
/// of the input alive). The filtered samples live at
/// `ext[pad..pad + x.len()]` with `pad` returned.
///
/// # Panics
///
/// Panics when `secs.len() > MAX_CHAIN_SECTIONS`.
pub fn filtfilt_fused_from_f64_in_ext<T: Scalar>(
    secs: &[SosSection<T>],
    x: &[f64],
    ext: &mut Vec<T>,
) -> usize {
    if x.is_empty() || secs.is_empty() {
        ext.clear();
        ext.extend(x.iter().map(|&v| T::from_f64(v)));
        return 0;
    }
    let two = T::from_f64(2.0);
    let pad = (6 * secs.len()).min(x.len() - 1).max(1);
    ext.clear();
    ext.reserve(x.len() + 2 * pad);
    let first = T::from_f64(x[0]);
    for i in (1..=pad).rev() {
        ext.push(two * first - T::from_f64(x[i.min(x.len() - 1)]));
    }
    ext.extend(x.iter().map(|&v| T::from_f64(v)));
    let n = x.len();
    let last = T::from_f64(x[n - 1]);
    for i in 1..=pad {
        let idx = n.saturating_sub(1 + i.min(n - 1));
        ext.push(two * last - T::from_f64(x[idx]));
    }
    sos_chain_in_place(secs, ext);
    sos_chain_reverse_in_place(secs, ext);
    pad
}

/// [`filtfilt_fused`] taking an `f64` input signal and narrowing it to
/// `T` while the padded extension is built. Copy-free variant:
/// [`filtfilt_fused_from_f64_in_ext`].
///
/// # Panics
///
/// Panics when `secs.len() > MAX_CHAIN_SECTIONS`.
pub fn filtfilt_fused_from_f64<T: Scalar>(
    secs: &[SosSection<T>],
    x: &[f64],
    ext: &mut Vec<T>,
    out: &mut Vec<T>,
) {
    let pad = filtfilt_fused_from_f64_in_ext(secs, x, ext);
    out.clear();
    out.extend_from_slice(&ext[pad..pad + x.len()]);
}

/// Fused Pan–Tompkins energy stage: five-point derivative → squaring →
/// moving-window integration in a single pass over `filtered`, writing
/// the integrated (MWI) signal into `out`.
///
/// Replaces three sweeps and two full-signal intermediates with one
/// sweep and a `win`-sample ring buffer (`ring`, reused across calls).
/// The accumulator ordering of the staged implementation is preserved —
/// add the incoming squared sample, then subtract the one leaving the
/// window — so the `f64` instantiation is bit-identical to
/// `five_point_derivative_into` + squaring + `moving_average_into`.
///
/// # Panics
///
/// Panics when `win == 0`.
pub fn qrs_energy_into<T: Scalar>(
    filtered: &[T],
    fs: f64,
    win: usize,
    ring: &mut Vec<T>,
    out: &mut Vec<T>,
) {
    // lint: allow(hot-panic) — entry-gate contract check (once per call,
    // not per sample); a zero window is a caller bug.
    assert!(win >= 1, "integration window must be >= 1 sample");
    let n = filtered.len();
    out.clear();
    out.reserve(n);
    ring.clear();
    ring.resize(win, T::ZERO);
    let fs_t = T::from_f64(fs);
    let two = T::from_f64(2.0);
    let eight = T::from_f64(8.0);
    let mut acc = T::ZERO;
    let mut pos = 0usize;
    // Derivative samples with a negative index clamp to x[0]; once i >= 4
    // every tap is in range and the interior loop indexes directly.
    let head = n.min(4);
    let x0 = filtered.first().copied().unwrap_or(T::ZERO);
    for i in 0..head {
        let g = |j: isize| -> T {
            if j < 0 {
                x0
            } else {
                filtered[(j as usize).min(n - 1)]
            }
        };
        let i = i as isize;
        let d = (two * g(i) + g(i - 1) - g(i - 3) - two * g(i - 4)) * fs_t / eight;
        let sq = d * d;
        acc += sq;
        if i as usize >= win {
            acc -= ring[pos];
        }
        ring[pos] = sq;
        pos += 1;
        if pos == win {
            pos = 0;
        }
        let effective = (i as usize + 1).min(win);
        // lint: allow(float-det) — exact integer→float cast (effective <= win).
        out.push(acc / T::from_f64(effective as f64));
    }
    for i in head.max(4)..n {
        let d = (two * filtered[i] + filtered[i - 1] - filtered[i - 3] - two * filtered[i - 4])
            * fs_t
            / eight;
        let sq = d * d;
        acc += sq;
        if i >= win {
            acc -= ring[pos];
        }
        ring[pos] = sq;
        pos += 1;
        if pos == win {
            pos = 0;
        }
        let effective = (i + 1).min(win);
        // lint: allow(float-det) — exact integer→float cast (effective <= win).
        out.push(acc / T::from_f64(effective as f64));
    }
}

/// A complex value at precision `T` — the planned real FFT's working
/// element (the public f64 [`crate::fft::Complex`] stays as-is for the
/// reference transform).
#[derive(Debug, Clone, Copy, Default)]
struct Cpx<T> {
    re: T,
    im: T,
}

impl<T: Scalar> Cpx<T> {
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        Cpx {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        Cpx {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        Cpx {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }
}

/// Iterative radix-2 forward FFT with a precomputed twiddle table
/// (`tw[j] = e^{-2πi·j/n}` for `j < n/2`, indexed by stride).
fn fft_pow2<T: Scalar>(buf: &mut [Cpx<T>], tw: &[Cpx<T>]) {
    let n = buf.len();
    if n <= 1 {
        return;
    }
    debug_assert!(n.is_power_of_two());
    debug_assert_eq!(tw.len(), n / 2);
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            buf.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let stride = n / len;
        let mut base = 0;
        while base < n {
            for k in 0..len / 2 {
                let w = tw[k * stride];
                let u = buf[base + k];
                let v = buf[base + k + len / 2].mul(w);
                buf[base + k] = u.add(v);
                buf[base + k + len / 2] = u.sub(v);
            }
            base += len;
        }
        len <<= 1;
    }
}

/// Planned real-input FFT of size `n` (a power of two): packs the real
/// signal into an `n/2`-point complex transform and untangles the
/// conjugate-symmetric spectrum, emitting the one-sided bin powers
/// `|X_k|²` for `k = 0..=n/2` directly — the only thing spectral
/// estimation needs. Twiddle tables are computed once (in `f64`, then
/// narrowed to `T`) and reused across calls; after construction the plan
/// allocates nothing.
///
/// Roughly halves the arithmetic of the zero-padded full complex
/// transform it replaces. Not bit-identical to it (different butterfly
/// ordering and table-exact twiddles); `dsp_kernel_equivalence` pins the
/// difference at ≤1e-12 relative on the spectra the feature path uses.
#[derive(Debug, Clone)]
pub struct RfftPlan<T> {
    n: usize,
    half: usize,
    /// Half-size FFT twiddles `e^{-2πi·j/(n/2)}`, `j < n/4`.
    tw: Vec<Cpx<T>>,
    /// Untangling twiddles `e^{-2πi·k/n}`, `k <= n/4`.
    wr: Vec<Cpx<T>>,
    buf: Vec<Cpx<T>>,
}

impl<T: Scalar> RfftPlan<T> {
    /// Builds a plan for real input of length `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and `n >= 2`.
    pub fn new(n: usize) -> Self {
        // lint: allow(hot-panic) — documented `# Panics` contract: plan
        // construction is setup, not the streaming path.
        assert!(
            n.is_power_of_two() && n >= 2,
            "rfft length must be a power of two >= 2, got {n}"
        );
        let half = n / 2;
        let tw = (0..half / 2)
            .map(|j| {
                let ang = -2.0 * std::f64::consts::PI * j as f64 / half as f64;
                Cpx {
                    re: T::from_f64(ang.cos()),
                    im: T::from_f64(ang.sin()),
                }
            })
            .collect();
        let wr = (0..=half / 2)
            .map(|k| {
                let ang = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
                Cpx {
                    re: T::from_f64(ang.cos()),
                    im: T::from_f64(ang.sin()),
                }
            })
            .collect();
        RfftPlan {
            n,
            half,
            tw,
            wr,
            buf: vec![Cpx::default(); half],
        }
    }

    /// Planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan is for the trivial length (never: `n >= 2`).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Computes the one-sided bin powers `|X_k|²`, `k = 0..=n/2`, of the
    /// real signal `x` (zero-padded to `n`; `x` longer than `n` is
    /// truncated). Clears and refills `power`.
    pub fn power_into(&mut self, x: &[T], power: &mut Vec<f64>) {
        let half = self.half;
        for (k, slot) in self.buf.iter_mut().enumerate() {
            slot.re = x.get(2 * k).copied().unwrap_or(T::ZERO);
            slot.im = x.get(2 * k + 1).copied().unwrap_or(T::ZERO);
        }
        fft_pow2(&mut self.buf, &self.tw);
        power.clear();
        power.reserve(half + 1);
        let z0 = self.buf[0];
        let dc = z0.re + z0.im;
        power.push((dc * dc).to_f64());
        for _ in 1..half {
            power.push(0.0);
        }
        let ny = z0.re - z0.im;
        power.push((ny * ny).to_f64());
        let h = T::from_f64(0.5);
        for k in 1..=half / 2 {
            let a = self.buf[k];
            let b = self.buf[half - k];
            // Even/odd split of the packed spectrum:
            //   E = (Z[k] + conj Z[half-k]) / 2
            //   O = -i/2 · (Z[k] - conj Z[half-k])
            // then X[k] = E + W·O and X[half-k] = conj(E - W·O) with
            // W = e^{-2πi·k/n}. Only magnitudes are emitted, so the
            // trailing conjugation is free.
            let er = (a.re + b.re) * h;
            let ei = (a.im - b.im) * h;
            let or_ = (a.im + b.im) * h;
            let oi = (b.re - a.re) * h;
            let w = self.wr[k];
            let ur = w.re * or_ - w.im * oi;
            let ui = w.re * oi + w.im * or_;
            let xr = er + ur;
            let xi = ei + ui;
            power[k] = (xr * xr + xi * xi).to_f64();
            if k != half - k {
                let yr = er - ur;
                let yi = ei - ui;
                power[half - k] = (yr * yr + yi * yi).to_f64();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::{dft, Complex};

    fn xorshift(seed: &mut u64) -> f64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        (*seed as f64 / u64::MAX as f64) - 0.5
    }

    #[test]
    fn sort_key_orders_exactly_like_total_cmp() {
        let vals64: Vec<f64> = vec![
            f64::NEG_INFINITY,
            -1e300,
            -1.5,
            -f64::MIN_POSITIVE,
            -5e-324,
            -0.0,
            0.0,
            5e-324,
            f64::MIN_POSITIVE,
            1.5,
            1e300,
            f64::INFINITY,
            f64::NAN,
            -f64::NAN,
        ];
        for &a in &vals64 {
            for &b in &vals64 {
                assert_eq!(
                    a.total_cmp(&b),
                    Scalar::sort_key(a).cmp(&Scalar::sort_key(b)),
                    "f64 total order mismatch for {a:?} vs {b:?}"
                );
            }
        }
        let vals32: Vec<f32> = vec![
            f32::NEG_INFINITY,
            -1e30,
            -1.5,
            -f32::MIN_POSITIVE,
            -0.0,
            0.0,
            f32::MIN_POSITIVE,
            1.5,
            1e30,
            f32::INFINITY,
            f32::NAN,
            -f32::NAN,
        ];
        for &a in &vals32 {
            for &b in &vals32 {
                assert_eq!(
                    a.total_cmp(&b),
                    Scalar::sort_key(a).cmp(&Scalar::sort_key(b)),
                    "f32 total order mismatch for {a:?} vs {b:?}"
                );
            }
        }
        // Random sweep: sorting by key must equal sorting by total_cmp.
        let mut seed = 0xC0FFEE_u64;
        let mut xs: Vec<f64> = (0..512).map(|_| xorshift(&mut seed) * 1e6).collect();
        let mut by_key = xs.clone();
        xs.sort_by(|a, b| a.total_cmp(b));
        by_key.sort_by_key(|v| Scalar::sort_key(*v));
        for (a, b) in xs.iter().zip(by_key.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Packed candidates: ascending packed order == descending value,
        // ascending index, at both precisions.
        for (a, b) in [(2.0f64, 1.0f64), (1.0, -1.0), (-0.0, -1.5)] {
            assert!(a.pack_desc(7) < b.pack_desc(3), "{a} vs {b}");
            assert!(<f64 as Scalar>::unpack_index(a.pack_desc(7)) == 7);
        }
        for (a, b) in [(2.0f32, 1.0f32), (1.0, -1.0), (-0.0, -1.5)] {
            assert!(a.pack_desc(7) < b.pack_desc(3), "{a} vs {b}");
            assert!(<f32 as Scalar>::unpack_index(a.pack_desc(7)) == 7);
        }
        assert!(1.5f64.pack_desc(3) < 1.5f64.pack_desc(9));
        assert!(1.5f32.pack_desc(3) < 1.5f32.pack_desc(9));
    }

    #[test]
    fn fused_from_f64_matches_preconverted_input() {
        let fs = 128.0;
        let mut seed = 0xFACE_u64;
        let sig: Vec<f64> = (0..513).map(|_| xorshift(&mut seed)).collect();
        let cascade = crate::filter::SosCascade::butterworth_bandpass(5.0, 15.0, fs, 1).unwrap();
        let secs64: Vec<SosSection<f64>> = cascade
            .sections()
            .iter()
            .map(|s| SosSection::from_f64(s.b, s.a))
            .collect();
        let (mut ext_a, mut out_a) = (Vec::new(), Vec::new());
        let (mut ext_b, mut out_b) = (Vec::new(), Vec::new());
        filtfilt_fused(&secs64, &sig, &mut ext_a, &mut out_a);
        filtfilt_fused_from_f64(&secs64, &sig, &mut ext_b, &mut out_b);
        for (a, b) in out_a.iter().zip(out_b.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let secs32: Vec<SosSection<f32>> = cascade
            .sections()
            .iter()
            .map(|s| SosSection::from_f64(s.b, s.a))
            .collect();
        let sig32: Vec<f32> = sig.iter().map(|&v| v as f32).collect();
        let (mut ext_c, mut out_c): (Vec<f32>, Vec<f32>) = (Vec::new(), Vec::new());
        let (mut ext_d, mut out_d): (Vec<f32>, Vec<f32>) = (Vec::new(), Vec::new());
        filtfilt_fused(&secs32, &sig32, &mut ext_c, &mut out_c);
        filtfilt_fused_from_f64(&secs32, &sig, &mut ext_d, &mut out_d);
        for (a, b) in out_c.iter().zip(out_d.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn chain_matches_per_section_sweeps_bitwise() {
        let fs = 128.0;
        let mut seed = 0xD5_u64;
        let sig: Vec<f64> = (0..777).map(|_| xorshift(&mut seed)).collect();
        for n_sections in 1..=4usize {
            let cascade =
                crate::filter::SosCascade::butterworth_bandpass(5.0, 15.0, fs, n_sections).unwrap();
            let mut swept = sig.clone();
            cascade.filter_in_place_reference(&mut swept);
            let secs: Vec<SosSection<f64>> = cascade
                .sections()
                .iter()
                .map(|s| SosSection::from_f64(s.b, s.a))
                .collect();
            let mut fused = sig.clone();
            sos_chain_in_place(&secs, &mut fused);
            for (a, b) in swept.iter().zip(fused.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            // Backward chain == reverse ∘ forward ∘ reverse.
            let mut rev = sig.clone();
            rev.reverse();
            sos_chain_in_place(&secs, &mut rev);
            rev.reverse();
            let mut back = sig.clone();
            sos_chain_reverse_in_place(&secs, &mut back);
            for (a, b) in rev.iter().zip(back.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn qrs_energy_matches_staged_passes_bitwise() {
        let fs = 128.0;
        let mut seed = 0xBEEF_u64;
        for n in [1usize, 3, 4, 5, 19, 640] {
            let sig: Vec<f64> = (0..n).map(|_| xorshift(&mut seed)).collect();
            for win in [1usize, 2, 19, 64] {
                let d = crate::filter::five_point_derivative(&sig, fs);
                let sq: Vec<f64> = d.iter().map(|v| v * v).collect();
                let staged = crate::filter::moving_average(&sq, win).unwrap();
                let (mut ring, mut fused) = (Vec::new(), Vec::new());
                qrs_energy_into(&sig, fs, win, &mut ring, &mut fused);
                assert_eq!(staged.len(), fused.len());
                for (a, b) in staged.iter().zip(fused.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "n {n} win {win}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn chain_rejects_oversized_cascades() {
        let secs = vec![SosSection::<f64>::default(); MAX_CHAIN_SECTIONS + 1];
        let mut x = [0.0; 4];
        sos_chain_in_place(&secs, &mut x);
    }

    #[test]
    fn rfft_plan_matches_naive_dft() {
        let mut seed = 0xACE_u64;
        for n in [2usize, 4, 8, 64, 128] {
            let sig: Vec<f64> = (0..n).map(|_| xorshift(&mut seed)).collect();
            let naive = dft(&sig
                .iter()
                .map(|&v| Complex::new(v, 0.0))
                .collect::<Vec<_>>());
            let mut plan = RfftPlan::<f64>::new(n);
            let mut power = Vec::new();
            plan.power_into(&sig, &mut power);
            assert_eq!(power.len(), n / 2 + 1);
            for (k, &p) in power.iter().enumerate() {
                let expect = naive[k].norm_sqr();
                assert!(
                    (p - expect).abs() <= 1e-9 * expect.max(1.0),
                    "n {n} bin {k}: {p} vs {expect}"
                );
            }
        }
    }

    #[test]
    fn rfft_plan_zero_pads_like_reference() {
        let sig = vec![1.0; 20];
        let mut plan = RfftPlan::<f64>::new(32);
        let mut power = Vec::new();
        plan.power_into(&sig, &mut power);
        let reference = crate::fft::rfft(&sig);
        for (k, &p) in power.iter().enumerate() {
            let expect = reference[k].norm_sqr();
            assert!((p - expect).abs() <= 1e-9 * expect.max(1.0), "bin {k}");
        }
    }

    #[test]
    fn rfft_plan_f32_tracks_f64() {
        let mut seed = 7_u64;
        let sig: Vec<f64> = (0..128).map(|_| xorshift(&mut seed)).collect();
        let sig32: Vec<f32> = sig.iter().map(|&v| v as f32).collect();
        let mut p64 = RfftPlan::<f64>::new(128);
        let mut p32 = RfftPlan::<f32>::new(128);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        p64.power_into(&sig, &mut a);
        p32.power_into(&sig32, &mut b);
        let scale: f64 = a.iter().copied().fold(1e-30, f64::max);
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x - y).abs() <= 1e-4 * scale, "{x} vs {y}");
        }
    }

    #[test]
    fn filtfilt_fused_f32_is_finite_and_close() {
        let fs = 128.0;
        let cascade = crate::filter::SosCascade::butterworth_bandpass(5.0, 15.0, fs, 1).unwrap();
        let sig: Vec<f64> = (0..512)
            .map(|i| (2.0 * std::f64::consts::PI * 7.0 * i as f64 / fs).sin())
            .collect();
        let reference = cascade.filtfilt(&sig);
        let secs32: Vec<SosSection<f32>> = cascade
            .sections()
            .iter()
            .map(|s| SosSection::from_f64(s.b, s.a))
            .collect();
        let sig32: Vec<f32> = sig.iter().map(|&v| v as f32).collect();
        let (mut ext, mut out) = (Vec::new(), Vec::new());
        filtfilt_fused(&secs32, &sig32, &mut ext, &mut out);
        for (a, b) in reference.iter().zip(out.iter()) {
            assert!((a - f64::from(*b)).abs() < 1e-3, "{a} vs {b}");
        }
    }
}
