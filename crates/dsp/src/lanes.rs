//! Lane-batched structure-of-arrays DSP kernels — `L` independent
//! windows in lock-step.
//!
//! The fused scalar kernels in [`crate::kernels`] left the filtfilt
//! recurrence at its latency floor: each biquad output feeds the next
//! sample's feedback taps, so one window's forward pass is a serial
//! chain of ~4–5-cycle FP adds no amount of unrolling can hide. The
//! recurrence is serial *within* a signal but fully independent
//! *across* signals — and the fleet, the streaming scheduler and the
//! batch assembler all naturally present many same-length windows at
//! once. This module processes `L` of them together by transposing the
//! group into `[T; L]` structure-of-arrays elements: each sample step
//! advances `L` independent dependency chains, which pipeline
//! concurrently (and autovectorize — `[f64; 4]`/`[f32; 8]` elementwise
//! arithmetic maps straight onto vector registers) instead of leaving
//! the FP units idle between dependent adds.
//!
//! **Bit-identity is the design constraint.** Every lane kernel applies
//! *exactly* the scalar kernel's expression, in the scalar kernel's
//! order, independently per lane — plain mul/add on each `[T; L]`
//! element, no horizontal reductions, no re-association, no FMA
//! contraction (Rust never contracts `a * b + c`). Lane `l` of a group
//! therefore computes the *same sequence of scalar operations* the
//! fused scalar path would run on that window alone, and the `f64`
//! instantiation is bit-identical to it; `lane_equivalence` pins this
//! on a real cohort for L ∈ {2, 4, 8} at both precisions.
//!
//! Only the *dense* phases are laned: the cascade-fused zero-phase
//! band-pass ([`lane_filtfilt_from_f64_in_ext`]) and the fused
//! derivative → squaring → moving-window-integration energy kernel
//! ([`lane_qrs_energy_into`]). Branchy phases (peak picking, adaptive
//! thresholds/search-back, HRV/Lorenz/Burg) diverge per window after a
//! handful of samples, so they run scalar per lane on
//! [`deinterleave_into`] slices. The planned-rfft Welch stage stays
//! scalar per lane too, deliberately: its input is the *EDR* series,
//! whose length (and therefore `nperseg` and plan size) varies per
//! window, so cross-window lanes would have to pad to a common length
//! and change the spectra; at ~2 µs of an ~84 µs window it is not
//! where the wall is.

// lint: allow-file(hot-index) — lane-kernel idiom: subscripts are lane/ring
// offsets bounded by the `[T; L]` element type and entry-gate length asserts.
use crate::kernels::{Scalar, SosSection, MAX_CHAIN_SECTIONS};

/// One SoA sample through a K-section chain: the scalar `chain_step`
/// expression evaluated per lane, every lane in lock-step, all sections
/// fused so the K independent per-section recurrences pipeline across
/// samples. Coefficients are shared (one filter design, `L` signals).
///
/// The state is *chained*, not per-section: in a cascade, section `k`'s
/// input taps `x1`/`x2` are by definition section `k-1`'s outputs at
/// the previous two samples — exactly its `y1`/`y2` taps *before* this
/// sample's update. Only section 0 (fed by the raw signal) keeps real
/// `x1`/`x2` taps, so a K-section step holds `2 + 2K` `[T; L]` vectors
/// of live state instead of `4K`. At the pipeline's K = 2 / L = 4 this
/// is the difference between fitting the vector register file and
/// spilling delay taps into the recurrence's critical path. The
/// substituted values are the same bits, in the same expression, so
/// every lane remains bit-identical to the scalar kernel.
#[inline(always)]
fn lane_chain_step<T: Scalar, const K: usize, const L: usize>(
    secs: &[SosSection<T>; K],
    x1: &mut [T; L],
    x2: &mut [T; L],
    y1: &mut [[T; L]; K],
    y2: &mut [[T; L]; K],
    xi: [T; L],
) -> [T; L] {
    let mut v = xi;
    // Section k's x-taps: the raw signal's history for k = 0, section
    // k-1's pre-update y-taps after that.
    let mut fx1 = *x1;
    let mut fx2 = *x2;
    let mut k = 0;
    while k < K {
        let s = &secs[k];
        let mut yo = [T::ZERO; L];
        let mut l = 0;
        while l < L {
            let yi =
                s.b0 * v[l] + s.b1 * fx1[l] + s.b2 * fx2[l] - s.a1 * y1[k][l] - s.a2 * y2[k][l];
            yo[l] = yi;
            l += 1;
        }
        fx1 = y1[k];
        fx2 = y2[k];
        y2[k] = y1[k];
        y1[k] = yo;
        v = yo;
        k += 1;
    }
    *x2 = *x1;
    *x1 = xi;
    v
}

/// Forward lane sweep at a monomorphised section count.
fn lane_chain_forward<T: Scalar, const K: usize, const L: usize>(
    secs: &[SosSection<T>; K],
    x: &mut [[T; L]],
) {
    let mut x1 = [T::ZERO; L];
    let mut x2 = [T::ZERO; L];
    let mut y1 = [[T::ZERO; L]; K];
    let mut y2 = [[T::ZERO; L]; K];
    for v in x.iter_mut() {
        *v = lane_chain_step(secs, &mut x1, &mut x2, &mut y1, &mut y2, *v);
    }
}

/// Backward lane sweep: last SoA sample to first, zero initial state —
/// exactly "reverse, filter forward, reverse" per lane.
fn lane_chain_backward<T: Scalar, const K: usize, const L: usize>(
    secs: &[SosSection<T>; K],
    x: &mut [[T; L]],
) {
    let mut x1 = [T::ZERO; L];
    let mut x2 = [T::ZERO; L];
    let mut y1 = [[T::ZERO; L]; K];
    let mut y2 = [[T::ZERO; L]; K];
    for v in x.iter_mut().rev() {
        *v = lane_chain_step(secs, &mut x1, &mut x2, &mut y1, &mut y2, *v);
    }
}

macro_rules! dispatch_lane_chain {
    ($fn:ident, $secs:expr, $x:expr) => {
        match $secs.len() {
            0 => {}
            1 => $fn::<T, 1, L>(crate::kernels::sos_array($secs), $x),
            2 => $fn::<T, 2, L>(crate::kernels::sos_array($secs), $x),
            3 => $fn::<T, 3, L>(crate::kernels::sos_array($secs), $x),
            4 => $fn::<T, 4, L>(crate::kernels::sos_array($secs), $x),
            5 => $fn::<T, 5, L>(crate::kernels::sos_array($secs), $x),
            6 => $fn::<T, 6, L>(crate::kernels::sos_array($secs), $x),
            7 => $fn::<T, 7, L>(crate::kernels::sos_array($secs), $x),
            8 => $fn::<T, 8, L>(crate::kernels::sos_array($secs), $x),
            // lint: allow(hot-panic) — documented `# Panics` contract; longer cascades are a caller bug.
            n => panic!("sos chain supports at most {MAX_CHAIN_SECTIONS} sections, got {n}"),
        }
    };
}

/// Cascade-fused forward filtering of `L` lanes at once. Each lane is
/// bit-identical to [`crate::kernels::sos_chain_in_place`] on that
/// lane's signal alone.
///
/// # Panics
///
/// Panics when `secs.len() > MAX_CHAIN_SECTIONS`.
pub fn lane_sos_chain_in_place<T: Scalar, const L: usize>(
    secs: &[SosSection<T>],
    x: &mut [[T; L]],
) {
    dispatch_lane_chain!(lane_chain_forward, secs, x)
}

/// Cascade-fused backward filtering of `L` lanes at once; per lane
/// bit-identical to [`crate::kernels::sos_chain_reverse_in_place`].
///
/// # Panics
///
/// Panics when `secs.len() > MAX_CHAIN_SECTIONS`.
pub fn lane_sos_chain_reverse_in_place<T: Scalar, const L: usize>(
    secs: &[SosSection<T>],
    x: &mut [[T; L]],
) {
    dispatch_lane_chain!(lane_chain_backward, secs, x)
}

/// Lane-batched zero-phase forward–backward filtering of `L`
/// same-length `f64` windows, narrowing to `T` while the odd-reflection
/// padded SoA extension is built (the AoS→SoA pack and the precision
/// narrowing are one pass). After the call the filtered samples live at
/// `ext[pad..pad + n]` with `pad` returned, one `[T; L]` element per
/// sample position.
///
/// Per lane this evaluates exactly the expressions of
/// [`crate::kernels::filtfilt_fused_from_f64_in_ext`] — same padding
/// arithmetic, same per-sample chain recurrence — so each lane is
/// bit-identical to the scalar fused path on that window alone.
///
/// # Panics
///
/// Panics when the windows' lengths differ and when
/// `secs.len() > MAX_CHAIN_SECTIONS`.
pub fn lane_filtfilt_from_f64_in_ext<T: Scalar, const L: usize>(
    secs: &[SosSection<T>],
    windows: &[&[f64]; L],
    ext: &mut Vec<[T; L]>,
) -> usize {
    let n = windows[0].len();
    for w in windows.iter() {
        // lint: allow(hot-panic) — documented `# Panics` contract: ragged
        // lane groups are a caller bug (entry gate, once per lane).
        assert_eq!(w.len(), n, "lane windows must share one length");
    }
    if n == 0 || secs.is_empty() {
        ext.clear();
        ext.extend((0..n).map(|i| std::array::from_fn(|l| T::from_f64(windows[l][i]))));
        return 0;
    }
    let two = T::from_f64(2.0);
    let pad = (6 * secs.len()).min(n - 1).max(1);
    ext.clear();
    ext.reserve(n + 2 * pad);
    let first: [T; L] = std::array::from_fn(|l| T::from_f64(windows[l][0]));
    for i in (1..=pad).rev() {
        let j = i.min(n - 1);
        ext.push(std::array::from_fn(|l| {
            two * first[l] - T::from_f64(windows[l][j])
        }));
    }
    // `i` walks all L inner slices in lock-step (clippy only sees the
    // outer `windows` index).
    #[allow(clippy::needless_range_loop)]
    for i in 0..n {
        ext.push(std::array::from_fn(|l| T::from_f64(windows[l][i])));
    }
    let last: [T; L] = std::array::from_fn(|l| T::from_f64(windows[l][n - 1]));
    for i in 1..=pad {
        let idx = n.saturating_sub(1 + i.min(n - 1));
        ext.push(std::array::from_fn(|l| {
            two * last[l] - T::from_f64(windows[l][idx])
        }));
    }
    lane_sos_chain_in_place(secs, ext);
    lane_sos_chain_reverse_in_place(secs, ext);
    pad
}

/// Lane-batched fused Pan–Tompkins energy stage: five-point derivative
/// → squaring → moving-window integration over `L` lanes in one sweep,
/// with a `[T; L]` accumulator and a `win`-element SoA ring. Per lane
/// the accumulator ordering (add the incoming squared sample, then
/// retire the outgoing one, divide by the effective window) is exactly
/// [`crate::kernels::qrs_energy_into`]'s — bit-identical per lane.
///
/// # Panics
///
/// Panics when `win == 0`.
pub fn lane_qrs_energy_into<T: Scalar, const L: usize>(
    filtered: &[[T; L]],
    fs: f64,
    win: usize,
    ring: &mut Vec<[T; L]>,
    out: &mut Vec<[T; L]>,
) {
    // lint: allow(hot-panic) — entry-gate contract check (once per call,
    // not per sample); a zero window is a caller bug.
    assert!(win >= 1, "integration window must be >= 1 sample");
    let n = filtered.len();
    out.clear();
    out.reserve(n);
    ring.clear();
    ring.resize(win, [T::ZERO; L]);
    let fs_t = T::from_f64(fs);
    let two = T::from_f64(2.0);
    let eight = T::from_f64(8.0);
    let mut acc = [T::ZERO; L];
    let mut pos = 0usize;
    let head = n.min(4);
    let x0 = filtered.first().copied().unwrap_or([T::ZERO; L]);
    for i in 0..head {
        let g = |j: isize| -> [T; L] {
            if j < 0 {
                x0
            } else {
                filtered[(j as usize).min(n - 1)]
            }
        };
        let i = i as isize;
        let (a, b, c, d4) = (g(i), g(i - 1), g(i - 3), g(i - 4));
        let mut sq = [T::ZERO; L];
        let mut l = 0;
        while l < L {
            let d = (two * a[l] + b[l] - c[l] - two * d4[l]) * fs_t / eight;
            sq[l] = d * d;
            acc[l] += sq[l];
            l += 1;
        }
        if i as usize >= win {
            let mut l = 0;
            while l < L {
                acc[l] -= ring[pos][l];
                l += 1;
            }
        }
        ring[pos] = sq;
        pos += 1;
        if pos == win {
            pos = 0;
        }
        // lint: allow(float-det) — exact integer→float cast (effective <= win).
        let effective = T::from_f64(((i as usize + 1).min(win)) as f64);
        out.push(std::array::from_fn(|l| acc[l] / effective));
    }
    for i in head.max(4)..n {
        let (a, b, c, d4) = (
            filtered[i],
            filtered[i - 1],
            filtered[i - 3],
            filtered[i - 4],
        );
        let mut sq = [T::ZERO; L];
        let mut l = 0;
        while l < L {
            let d = (two * a[l] + b[l] - c[l] - two * d4[l]) * fs_t / eight;
            sq[l] = d * d;
            acc[l] += sq[l];
            l += 1;
        }
        if i >= win {
            let mut l = 0;
            while l < L {
                acc[l] -= ring[pos][l];
                l += 1;
            }
        }
        ring[pos] = sq;
        pos += 1;
        if pos == win {
            pos = 0;
        }
        // lint: allow(float-det) — exact integer→float cast (effective <= win).
        let effective = T::from_f64(((i + 1).min(win)) as f64);
        out.push(std::array::from_fn(|l| acc[l] / effective));
    }
}

/// SoA→AoS unpack of one lane: copies lane `lane` of `src` into `dst`
/// (cleared first). The branchy per-window stages run on these scalar
/// slices.
///
/// # Panics
///
/// Panics when `lane >= L`.
pub fn deinterleave_into<T: Scalar, const L: usize>(src: &[[T; L]], lane: usize, dst: &mut Vec<T>) {
    // lint: allow(hot-panic) — documented `# Panics` contract: an
    // out-of-range lane is a caller bug (entry gate, once per unpack).
    assert!(lane < L, "lane {lane} out of range for L = {L}");
    dst.clear();
    dst.reserve(src.len());
    dst.extend(src.iter().map(|v| v[lane]));
}

/// SoA→AoS unpack of *every* lane in one sweep: reads each `[T; L]`
/// element once and scatters it across the `L` destination buffers
/// (each cleared first). Equivalent to `L` [`deinterleave_into`] calls
/// but makes one pass over `src` instead of `L` strided re-reads — the
/// branchy decision stages consume all lanes anyway, so the lane
/// detector unpacks them together.
pub fn deinterleave_lanes_into<T: Scalar, const L: usize>(src: &[[T; L]], dsts: &mut [Vec<T>; L]) {
    let n = src.len();
    for d in dsts.iter_mut() {
        d.clear();
        d.reserve(n);
    }
    // Blocked transpose: each block is small enough to stay L1-resident
    // while all L lanes gather from it, so the SoA array crosses the
    // cache hierarchy once while the inner loops keep the strided-gather
    // shape the autovectorizer handles well (an element-wise scatter to
    // L destinations measures ~1.7x slower at L = 4).
    const BLOCK: usize = 128;
    for block in src.chunks(BLOCK) {
        for (l, d) in dsts.iter_mut().enumerate() {
            d.extend(block.iter().map(|v| v[l]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::SosCascade;
    use crate::kernels::{filtfilt_fused_from_f64_in_ext, qrs_energy_into};

    fn xorshift(seed: &mut u64) -> f64 {
        *seed ^= *seed << 13;
        *seed ^= *seed >> 7;
        *seed ^= *seed << 17;
        (*seed as f64 / u64::MAX as f64) - 0.5
    }

    fn signals(n: usize, count: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut s = seed;
        (0..count)
            .map(|_| (0..n).map(|_| xorshift(&mut s)).collect())
            .collect()
    }

    fn secs_t<T: Scalar>(cascade: &SosCascade) -> Vec<SosSection<T>> {
        cascade
            .sections()
            .iter()
            .map(|s| SosSection::from_f64(s.b, s.a))
            .collect()
    }

    fn lane_filtfilt_matches_scalar_bitwise<T: Scalar, const L: usize>() {
        let fs = 128.0;
        for n in [5usize, 17, 513] {
            let sigs = signals(n, L, 0xFACE ^ n as u64);
            for n_sections in [1usize, 2] {
                let cascade = SosCascade::butterworth_bandpass(5.0, 15.0, fs, n_sections).unwrap();
                let secs = secs_t::<T>(&cascade);
                let windows: [&[f64]; L] = std::array::from_fn(|l| sigs[l].as_slice());
                let mut ext = Vec::new();
                let pad = lane_filtfilt_from_f64_in_ext(&secs, &windows, &mut ext);
                let mut lane_out = Vec::new();
                let mut scalar_ext: Vec<T> = Vec::new();
                for (l, sig) in sigs.iter().enumerate() {
                    deinterleave_into(&ext[pad..pad + n], l, &mut lane_out);
                    let spad = filtfilt_fused_from_f64_in_ext(&secs, sig, &mut scalar_ext);
                    assert_eq!(pad, spad);
                    for (i, (a, b)) in lane_out
                        .iter()
                        .zip(scalar_ext[spad..spad + n].iter())
                        .enumerate()
                    {
                        assert_eq!(
                            a.to_f64().to_bits(),
                            b.to_f64().to_bits(),
                            "n {n} sections {n_sections} lane {l} sample {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lane_filtfilt_matches_scalar_bitwise_all_widths() {
        lane_filtfilt_matches_scalar_bitwise::<f64, 2>();
        lane_filtfilt_matches_scalar_bitwise::<f64, 4>();
        lane_filtfilt_matches_scalar_bitwise::<f64, 8>();
        lane_filtfilt_matches_scalar_bitwise::<f32, 2>();
        lane_filtfilt_matches_scalar_bitwise::<f32, 4>();
        lane_filtfilt_matches_scalar_bitwise::<f32, 8>();
    }

    fn lane_energy_matches_scalar_bitwise<const L: usize>() {
        let fs = 128.0;
        for n in [1usize, 4, 19, 640] {
            let sigs = signals(n, L, 0xBEEF ^ n as u64);
            let soa: Vec<[f64; L]> = (0..n)
                .map(|i| std::array::from_fn(|l| sigs[l][i]))
                .collect();
            for win in [1usize, 2, 19, 64] {
                let (mut ring, mut mwi) = (Vec::new(), Vec::new());
                lane_qrs_energy_into(&soa, fs, win, &mut ring, &mut mwi);
                let mut lane_out = Vec::new();
                let (mut sring, mut smwi) = (Vec::new(), Vec::new());
                for (l, sig) in sigs.iter().enumerate() {
                    deinterleave_into(&mwi, l, &mut lane_out);
                    qrs_energy_into(sig, fs, win, &mut sring, &mut smwi);
                    assert_eq!(lane_out.len(), smwi.len());
                    for (i, (a, b)) in lane_out.iter().zip(smwi.iter()).enumerate() {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "n {n} win {win} lane {l} sample {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn lane_energy_matches_scalar_bitwise_all_widths() {
        lane_energy_matches_scalar_bitwise::<2>();
        lane_energy_matches_scalar_bitwise::<4>();
        lane_energy_matches_scalar_bitwise::<8>();
    }

    #[test]
    fn empty_and_trivial_inputs_mirror_scalar() {
        let a: [&[f64]; 2] = [&[], &[]];
        let mut ext: Vec<[f64; 2]> = vec![[1.0, 2.0]];
        let cascade = SosCascade::butterworth_bandpass(5.0, 15.0, 128.0, 1).unwrap();
        let secs = secs_t::<f64>(&cascade);
        assert_eq!(lane_filtfilt_from_f64_in_ext(&secs, &a, &mut ext), 0);
        assert!(ext.is_empty());
        let one: [&[f64]; 2] = [&[1.5], &[-2.5]];
        let pad = lane_filtfilt_from_f64_in_ext(&secs, &one, &mut ext);
        let mut sext = Vec::new();
        for (l, sig) in [[1.5].as_slice(), [-2.5].as_slice()].iter().enumerate() {
            let spad = filtfilt_fused_from_f64_in_ext(&secs, sig, &mut sext);
            assert_eq!(pad, spad);
            assert_eq!(ext[pad][l].to_bits(), sext[spad].to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "share one length")]
    fn mismatched_lane_lengths_panic() {
        let a: [&[f64]; 2] = [&[1.0, 2.0], &[1.0]];
        let mut ext = Vec::new();
        let cascade = SosCascade::butterworth_bandpass(5.0, 15.0, 128.0, 1).unwrap();
        lane_filtfilt_from_f64_in_ext(&secs_t::<f64>(&cascade), &a, &mut ext);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn deinterleave_rejects_bad_lane() {
        let soa = [[0.0f64; 2]; 4];
        let mut dst = Vec::new();
        deinterleave_into(&soa, 2, &mut dst);
    }

    #[test]
    fn one_pass_deinterleave_matches_per_lane() {
        let mut seed = 7u64;
        let soa: Vec<[f64; 4]> = (0..257)
            .map(|_| std::array::from_fn(|_| xorshift(&mut seed)))
            .collect();
        let mut all: [Vec<f64>; 4] = std::array::from_fn(|_| vec![9.0; 3]);
        deinterleave_lanes_into(&soa, &mut all);
        let mut one = Vec::new();
        for (l, got) in all.iter().enumerate() {
            deinterleave_into(&soa, l, &mut one);
            assert_eq!(got.len(), one.len());
            for (a, b) in got.iter().zip(one.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Empty input clears stale contents.
        deinterleave_lanes_into::<f64, 4>(&[], &mut all);
        assert!(all.iter().all(Vec::is_empty));
    }
}
