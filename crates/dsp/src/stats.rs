//! Descriptive statistics over `f64` slices.
//!
//! These helpers back the feature extractors (mean/σ for Eq 6 range
//! calibration, Pearson coefficients for the Fig 3 correlation matrix, …).

use crate::error::DspError;

/// Arithmetic mean. Returns 0 for an empty slice (documented convention so
/// feature extractors degrade gracefully on degenerate windows).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().sum::<f64>() / x.len() as f64
}

/// Population variance (divides by `n`).
pub fn variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Sample variance (divides by `n - 1`).
pub fn sample_variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Sample standard deviation.
pub fn sample_std_dev(x: &[f64]) -> f64 {
    sample_variance(x).sqrt()
}

/// Root mean square.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Skewness (third standardised moment); 0 for slices shorter than 3 or with
/// zero variance.
pub fn skewness(x: &[f64]) -> f64 {
    if x.len() < 3 {
        return 0.0;
    }
    let m = mean(x);
    let s = std_dev(x);
    if s == 0.0 {
        return 0.0;
    }
    x.iter().map(|v| ((v - m) / s).powi(3)).sum::<f64>() / x.len() as f64
}

/// Excess kurtosis (fourth standardised moment minus 3); 0 for degenerate
/// inputs.
pub fn kurtosis(x: &[f64]) -> f64 {
    if x.len() < 4 {
        return 0.0;
    }
    let m = mean(x);
    let s = std_dev(x);
    if s == 0.0 {
        return 0.0;
    }
    x.iter().map(|v| ((v - m) / s).powi(4)).sum::<f64>() / x.len() as f64 - 3.0
}

/// Minimum value; `NaN`-free inputs assumed. Returns `f64::INFINITY` when
/// empty so that `min <= max` still holds vacuously.
pub fn min(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum value. Returns `f64::NEG_INFINITY` when empty.
pub fn max(x: &[f64]) -> f64 {
    x.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolated percentile, `p` in `[0, 100]`.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] on an empty slice and
/// [`DspError::InvalidParameter`] when `p` is outside `[0, 100]`.
pub fn percentile(x: &[f64], p: f64) -> Result<f64, DspError> {
    if x.is_empty() {
        return Err(DspError::EmptyInput);
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(DspError::InvalidParameter {
            name: "p",
            reason: "percentile must be within [0, 100]",
        });
    }
    // Short inputs — the dominant shape: running medians over a handful of
    // beats — sort on the stack instead of allocating. `total_cmp`-equal
    // values are bit-identical, so the unstable sort returns exactly the
    // sequence the stable sort would.
    let mut stack = [0.0f64; 16];
    let mut heap: Vec<f64>;
    let sorted: &mut [f64] = if x.len() <= stack.len() {
        stack[..x.len()].copy_from_slice(x);
        &mut stack[..x.len()]
    } else {
        heap = x.to_vec();
        &mut heap
    };
    sorted.sort_unstable_by(|a, b| a.total_cmp(b));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Median (50th percentile).
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] on an empty slice.
pub fn median(x: &[f64]) -> Result<f64, DspError> {
    percentile(x, 50.0)
}

/// Median absolute deviation.
///
/// # Errors
///
/// Returns [`DspError::EmptyInput`] on an empty slice.
pub fn mad(x: &[f64]) -> Result<f64, DspError> {
    let med = median(x)?;
    let dev: Vec<f64> = x.iter().map(|v| (v - med).abs()).collect();
    median(&dev)
}

/// Population covariance of two equal-length series.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] when lengths differ and
/// [`DspError::TooShort`] when fewer than 2 samples are available.
pub fn covariance(x: &[f64], y: &[f64]) -> Result<f64, DspError> {
    if x.len() != y.len() {
        return Err(DspError::LengthMismatch {
            left: x.len(),
            right: y.len(),
        });
    }
    if x.len() < 2 {
        return Err(DspError::TooShort {
            needed: 2,
            got: x.len(),
        });
    }
    let mx = mean(x);
    let my = mean(y);
    Ok(x.iter()
        .zip(y.iter())
        .map(|(&a, &b)| (a - mx) * (b - my))
        .sum::<f64>()
        / x.len() as f64)
}

/// Pearson correlation coefficient (Eq 4 of the paper).
///
/// Degenerate series (zero variance) yield 0 by convention, so constant
/// features count as uncorrelated rather than poisoning the matrix with NaN.
///
/// # Errors
///
/// Returns [`DspError::LengthMismatch`] or [`DspError::TooShort`] as
/// [`covariance`] does.
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, DspError> {
    let cov = covariance(x, y)?;
    let sx = std_dev(x);
    let sy = std_dev(y);
    if sx == 0.0 || sy == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (sx * sy))
}

/// Index of the maximum element; `None` when empty.
pub fn argmax(x: &[f64]) -> Option<usize> {
    x.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

/// Index of the minimum element; `None` when empty.
pub fn argmin(x: &[f64]) -> Option<usize> {
    x.iter()
        .enumerate()
        .min_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
}

/// Successive differences `x[i+1] - x[i]` (length `n - 1`).
pub fn diff(x: &[f64]) -> Vec<f64> {
    x.windows(2).map(|w| w[1] - w[0]).collect()
}

/// Z-score normalisation: `(x - mean) / std`. A zero-variance input returns
/// all zeros.
pub fn zscore(x: &[f64]) -> Vec<f64> {
    let m = mean(x);
    let s = std_dev(x);
    if s == 0.0 {
        return vec![0.0; x.len()];
    }
    x.iter().map(|v| (v - m) / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn mean_variance_basics() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&x) - 2.5).abs() < EPS);
        assert!((variance(&x) - 1.25).abs() < EPS);
        assert!((sample_variance(&x) - 5.0 / 3.0).abs() < EPS);
        assert!((std_dev(&x) - 1.25f64.sqrt()).abs() < EPS);
    }

    #[test]
    fn empty_and_single_are_graceful() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
        assert_eq!(skewness(&[1.0, 2.0]), 0.0);
        assert_eq!(kurtosis(&[1.0]), 0.0);
        assert_eq!(rms(&[]), 0.0);
    }

    #[test]
    fn rms_of_constant() {
        assert!((rms(&[3.0; 10]) - 3.0).abs() < EPS);
    }

    #[test]
    fn skewness_sign() {
        // Right-skewed data has positive skewness.
        let right = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&right) > 0.5);
        let left = [-10.0, 1.0, 1.0, 1.0, 1.0];
        assert!(skewness(&left) < -0.5);
        // Symmetric data has (near) zero skewness.
        let sym = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&sym).abs() < EPS);
    }

    #[test]
    fn kurtosis_of_uniformish_is_negative() {
        let x: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert!(kurtosis(&x) < 0.0); // platykurtic
    }

    #[test]
    fn percentile_and_median() {
        let x = [3.0, 1.0, 2.0, 5.0, 4.0];
        assert!((median(&x).unwrap() - 3.0).abs() < EPS);
        assert!((percentile(&x, 0.0).unwrap() - 1.0).abs() < EPS);
        assert!((percentile(&x, 100.0).unwrap() - 5.0).abs() < EPS);
        assert!((percentile(&x, 25.0).unwrap() - 2.0).abs() < EPS);
        assert!(percentile(&[], 50.0).is_err());
        assert!(percentile(&x, 101.0).is_err());
    }

    #[test]
    fn mad_robustness() {
        let x = [1.0, 2.0, 3.0, 4.0, 100.0];
        assert!((mad(&x).unwrap() - 1.0).abs() < EPS);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 7.0).collect();
        let z: Vec<f64> = x.iter().map(|v| -2.0 * v).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-10);
        assert!((pearson(&x, &z).unwrap() + 1.0).abs() < 1e-10);
    }

    #[test]
    fn pearson_degenerate_is_zero() {
        let x = [1.0; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pearson(&x, &y).unwrap(), 0.0);
    }

    #[test]
    fn pearson_mismatch_errors() {
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0]),
            Err(DspError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn covariance_symmetry() {
        let x = [1.0, 3.0, 2.0, 5.0];
        let y = [2.0, 1.0, 4.0, 3.0];
        assert!((covariance(&x, &y).unwrap() - covariance(&y, &x).unwrap()).abs() < EPS);
    }

    #[test]
    fn argminmax_and_diff() {
        let x = [3.0, -1.0, 7.0, 2.0];
        assert_eq!(argmax(&x), Some(2));
        assert_eq!(argmin(&x), Some(1));
        assert_eq!(argmax(&[]), None);
        assert_eq!(diff(&x), vec![-4.0, 8.0, -5.0]);
        assert!(diff(&[1.0]).is_empty());
    }

    #[test]
    fn zscore_properties() {
        let x = [2.0, 4.0, 6.0, 8.0];
        let z = zscore(&x);
        assert!(mean(&z).abs() < EPS);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
        assert_eq!(zscore(&[5.0; 4]), vec![0.0; 4]);
    }
}
