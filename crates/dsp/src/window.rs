//! Tapering windows for spectral estimation.

use std::f64::consts::PI;

/// Window shape for periodogram/Welch estimation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WindowKind {
    /// No tapering (boxcar).
    Rect,
    /// Hann (raised cosine); default — good sidelobe/variance compromise.
    #[default]
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman (three-term).
    Blackman,
}

impl WindowKind {
    /// Generates the window coefficients for length `n`.
    ///
    /// A length of 0 yields an empty vector; length 1 a single `1.0`.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            return vec![1.0];
        }
        let m = (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = i as f64 / m;
                match self {
                    WindowKind::Rect => 1.0,
                    WindowKind::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
                    WindowKind::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
                    WindowKind::Blackman => {
                        0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos()
                    }
                }
            })
            .collect()
    }

    /// Multiplies `signal` by the window in place and returns the window's
    /// power normalisation factor `sum(w^2)` needed for PSD scaling.
    pub fn apply(self, signal: &mut [f64]) -> f64 {
        let w = self.coefficients(signal.len());
        let mut pow = 0.0;
        for (s, &wi) in signal.iter_mut().zip(w.iter()) {
            *s *= wi;
            pow += wi * wi;
        }
        pow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_is_all_ones() {
        assert_eq!(WindowKind::Rect.coefficients(5), vec![1.0; 5]);
    }

    #[test]
    fn edge_lengths() {
        for k in [
            WindowKind::Rect,
            WindowKind::Hann,
            WindowKind::Hamming,
            WindowKind::Blackman,
        ] {
            assert!(k.coefficients(0).is_empty());
            assert_eq!(k.coefficients(1), vec![1.0]);
        }
    }

    #[test]
    fn hann_endpoints_are_zero_and_symmetric() {
        let w = WindowKind::Hann.coefficients(33);
        assert!(w[0].abs() < 1e-15);
        assert!(w[32].abs() < 1e-15);
        assert!((w[16] - 1.0).abs() < 1e-12); // peak at centre
        for i in 0..w.len() {
            assert!((w[i] - w[w.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn hamming_endpoints() {
        let w = WindowKind::Hamming.coefficients(11);
        assert!((w[0] - 0.08).abs() < 1e-12);
        assert!((w[10] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn blackman_is_nonnegative() {
        let w = WindowKind::Blackman.coefficients(64);
        assert!(w.iter().all(|&v| v >= -1e-12));
    }

    #[test]
    fn apply_returns_power() {
        let mut sig = vec![1.0; 16];
        let pow = WindowKind::Hann.apply(&mut sig);
        let expect: f64 = WindowKind::Hann
            .coefficients(16)
            .iter()
            .map(|w| w * w)
            .sum();
        assert!((pow - expect).abs() < 1e-12);
        // Signal now equals the window itself.
        let w = WindowKind::Hann.coefficients(16);
        for (s, w) in sig.iter().zip(w.iter()) {
            assert!((s - w).abs() < 1e-12);
        }
    }
}
