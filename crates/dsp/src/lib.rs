#![forbid(unsafe_code)]
//! # biodsp — bio-signal DSP substrate
//!
//! Signal-processing building blocks used by the ECG-based epilepsy-monitor
//! reproduction (Ferretti et al., DATE 2019): FFT and spectral estimation,
//! auto-regressive modelling, IIR/FIR filtering, QRS detection
//! (Pan–Tompkins) and descriptive statistics.
//!
//! Everything is implemented from scratch on `f64` slices; no external
//! numeric dependencies.
//!
//! ## Example
//!
//! ```
//! use biodsp::fft::{fft, Complex};
//!
//! // Spectrum of a pure tone lands in a single bin.
//! let n = 64;
//! let tone: Vec<Complex> = (0..n)
//!     .map(|i| Complex::new((2.0 * std::f64::consts::PI * 8.0 * i as f64 / n as f64).cos(), 0.0))
//!     .collect();
//! let spec = fft(&tone);
//! let peak = (0..n / 2).max_by(|&a, &b| spec[a].norm().total_cmp(&spec[b].norm())).unwrap();
//! assert_eq!(peak, 8);
//! ```

pub mod ar;
pub mod detrend;
pub mod error;
pub mod fft;
pub mod filter;
pub mod kernels;
pub mod lanes;
pub mod psd;
pub mod qrs;
pub mod resample;
pub mod stats;
pub mod stream;
pub mod window;

pub use error::DspError;
pub use kernels::ExtractPrecision;
