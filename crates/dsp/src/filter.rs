//! IIR (biquad) and FIR filtering.
//!
//! Butterworth sections are designed with the RBJ cookbook formulas, and a
//! `filtfilt` forward–backward pass provides zero-phase filtering for the
//! feature-extraction front end.

// lint: allow-file(hot-index) — filter-kernel idiom: taps index a window whose
// length is validated at entry; offsets stay within `i` which walks the slice.
use crate::error::DspError;
use crate::kernels::{self, SosSection};
use std::f64::consts::PI;

/// A second-order IIR section (biquad) in direct form I:
/// `y[n] = (b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2])`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Biquad {
    /// Feed-forward coefficients.
    pub b: [f64; 3],
    /// Feedback coefficients `a1, a2` (with `a0` normalised to 1).
    pub a: [f64; 2],
}

impl Biquad {
    /// Identity (pass-through) section.
    pub fn identity() -> Self {
        Biquad {
            b: [1.0, 0.0, 0.0],
            a: [0.0, 0.0],
        }
    }

    /// Second-order Butterworth low-pass at cut-off `fc` Hz for sampling
    /// rate `fs` (RBJ cookbook with Q = 1/sqrt(2)).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] unless `0 < fc < fs/2`.
    pub fn butterworth_lowpass(fc: f64, fs: f64) -> Result<Self, DspError> {
        check_fc(fc, fs)?;
        let w0 = 2.0 * PI * fc / fs;
        let alpha = w0.sin() / (2.0 * std::f64::consts::FRAC_1_SQRT_2);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Biquad {
            b: [
                (1.0 - cw) / 2.0 / a0,
                (1.0 - cw) / a0,
                (1.0 - cw) / 2.0 / a0,
            ],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        })
    }

    /// Second-order Butterworth high-pass at cut-off `fc` Hz.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] unless `0 < fc < fs/2`.
    pub fn butterworth_highpass(fc: f64, fs: f64) -> Result<Self, DspError> {
        check_fc(fc, fs)?;
        let w0 = 2.0 * PI * fc / fs;
        let alpha = w0.sin() / (2.0 * std::f64::consts::FRAC_1_SQRT_2);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Biquad {
            b: [
                (1.0 + cw) / 2.0 / a0,
                -(1.0 + cw) / a0,
                (1.0 + cw) / 2.0 / a0,
            ],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        })
    }

    /// Band-pass biquad (constant peak gain) centred at `f0` with quality
    /// factor `q`.
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] unless `0 < f0 < fs/2` and
    /// `q > 0`.
    pub fn bandpass(f0: f64, q: f64, fs: f64) -> Result<Self, DspError> {
        check_fc(f0, fs)?;
        if q <= 0.0 {
            return Err(DspError::InvalidParameter {
                name: "q",
                reason: "must be positive",
            });
        }
        let w0 = 2.0 * PI * f0 / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Biquad {
            b: [alpha / a0, 0.0, -alpha / a0],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        })
    }

    /// Notch filter at `f0` with quality factor `q` (e.g. 50/60 Hz mains).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] unless `0 < f0 < fs/2` and
    /// `q > 0`.
    pub fn notch(f0: f64, q: f64, fs: f64) -> Result<Self, DspError> {
        check_fc(f0, fs)?;
        if q <= 0.0 {
            return Err(DspError::InvalidParameter {
                name: "q",
                reason: "must be positive",
            });
        }
        let w0 = 2.0 * PI * f0 / fs;
        let alpha = w0.sin() / (2.0 * q);
        let cw = w0.cos();
        let a0 = 1.0 + alpha;
        Ok(Biquad {
            b: [1.0 / a0, -2.0 * cw / a0, 1.0 / a0],
            a: [-2.0 * cw / a0, (1.0 - alpha) / a0],
        })
    }

    /// Filters `x`, returning a new vector (direct form I, zero initial
    /// state).
    pub fn filter(&self, x: &[f64]) -> Vec<f64> {
        let mut y = Vec::with_capacity(x.len());
        let (mut x1, mut x2, mut y1, mut y2) = (0.0, 0.0, 0.0, 0.0);
        for &xi in x {
            let yi =
                self.b[0] * xi + self.b[1] * x1 + self.b[2] * x2 - self.a[0] * y1 - self.a[1] * y2;
            x2 = x1;
            x1 = xi;
            y2 = y1;
            y1 = yi;
            y.push(yi);
        }
        y
    }

    /// In-place twin of [`Biquad::filter`]: identical recurrence and
    /// rounding, so outputs are bit-identical — the streaming front end
    /// uses it to run whole cascades without per-call allocation.
    pub fn filter_in_place(&self, x: &mut [f64]) {
        let (mut x1, mut x2, mut y1, mut y2) = (0.0, 0.0, 0.0, 0.0);
        for slot in x.iter_mut() {
            let xi = *slot;
            let yi =
                self.b[0] * xi + self.b[1] * x1 + self.b[2] * x2 - self.a[0] * y1 - self.a[1] * y2;
            x2 = x1;
            x1 = xi;
            y2 = y1;
            y1 = yi;
            *slot = yi;
        }
    }

    /// Magnitude response at frequency `f` (Hz) for sampling rate `fs`.
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        let w = 2.0 * PI * f / fs;
        let z1 = crate::fft::Complex::from_polar(1.0, -w);
        let z2 = z1 * z1;
        let num = crate::fft::Complex::from(self.b[0]) + z1.scale(self.b[1]) + z2.scale(self.b[2]);
        let den = crate::fft::Complex::ONE + z1.scale(self.a[0]) + z2.scale(self.a[1]);
        num.norm() / den.norm()
    }
}

fn check_fc(fc: f64, fs: f64) -> Result<(), DspError> {
    if fs <= 0.0 {
        return Err(DspError::InvalidParameter {
            name: "fs",
            reason: "must be positive",
        });
    }
    if fc <= 0.0 || fc >= fs / 2.0 {
        return Err(DspError::InvalidParameter {
            name: "fc",
            reason: "must satisfy 0 < fc < fs/2",
        });
    }
    Ok(())
}

/// A cascade of biquad sections applied in sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SosCascade {
    sections: Vec<Biquad>,
}

/// Reusable work buffer for [`SosCascade::filtfilt_into`].
#[derive(Debug, Clone, Default)]
pub struct FiltFiltScratch {
    /// Padded signal extension, filtered in place both directions.
    ext: Vec<f64>,
}

impl SosCascade {
    /// Creates a cascade from sections.
    pub fn new(sections: Vec<Biquad>) -> Self {
        SosCascade { sections }
    }

    /// Butterworth band-pass built as `n_sections` high-pass at `lo`
    /// followed by `n_sections` low-pass at `hi` (the structure used by the
    /// Pan–Tompkins front end).
    ///
    /// # Errors
    ///
    /// Returns [`DspError::InvalidParameter`] for inverted or out-of-range
    /// corner frequencies.
    pub fn butterworth_bandpass(
        lo: f64,
        hi: f64,
        fs: f64,
        n_sections: usize,
    ) -> Result<Self, DspError> {
        if lo >= hi {
            return Err(DspError::InvalidParameter {
                name: "lo/hi",
                reason: "low corner must be below high corner",
            });
        }
        let mut sections = Vec::with_capacity(2 * n_sections);
        for _ in 0..n_sections {
            sections.push(Biquad::butterworth_highpass(lo, fs)?);
            sections.push(Biquad::butterworth_lowpass(hi, fs)?);
        }
        Ok(SosCascade { sections })
    }

    /// Number of biquad sections.
    pub fn len(&self) -> usize {
        self.sections.len()
    }

    /// The biquad sections, in application order.
    pub fn sections(&self) -> &[Biquad] {
        &self.sections
    }

    /// Copies the section coefficients into a fused-kernel array at
    /// precision `T` (first `self.len()` entries are meaningful).
    fn fused_sections<T: kernels::Scalar>(&self) -> [SosSection<T>; kernels::MAX_CHAIN_SECTIONS] {
        let mut secs = [SosSection::<T>::default(); kernels::MAX_CHAIN_SECTIONS];
        for (dst, s) in secs.iter_mut().zip(self.sections.iter()) {
            *dst = SosSection::from_f64(s.b, s.a);
        }
        secs
    }

    /// Whether the cascade has no sections (identity).
    pub fn is_empty(&self) -> bool {
        self.sections.is_empty()
    }

    /// Applies all sections in sequence.
    pub fn filter(&self, x: &[f64]) -> Vec<f64> {
        let mut y = x.to_vec();
        self.filter_in_place(&mut y);
        y
    }

    /// Applies all sections in sequence, in place (bit-identical to
    /// [`SosCascade::filter`]).
    ///
    /// Runs the cascade-fused register chain
    /// ([`kernels::sos_chain_in_place`]): one sweep over `x` with every
    /// section chained per sample, bit-identical to the per-section
    /// sweeps of [`SosCascade::filter_in_place_reference`] (cascades
    /// longer than [`kernels::MAX_CHAIN_SECTIONS`] fall back to them).
    pub fn filter_in_place(&self, x: &mut [f64]) {
        if self.sections.len() > kernels::MAX_CHAIN_SECTIONS {
            self.filter_in_place_reference(x);
            return;
        }
        let secs = self.fused_sections::<f64>();
        kernels::sos_chain_in_place(&secs[..self.sections.len()], x);
    }

    /// Pre-fusion reference: one whole-buffer sweep per section. Kept as
    /// the bit-identity reference for the fused chain (see the
    /// `dsp_kernel_equivalence` suite) and as the fallback for cascades
    /// longer than [`kernels::MAX_CHAIN_SECTIONS`].
    pub fn filter_in_place_reference(&self, x: &mut [f64]) {
        for s in &self.sections {
            s.filter_in_place(x);
        }
    }

    /// Zero-phase forward–backward filtering with odd reflection padding at
    /// both ends (pad length `3 * sections * 2` samples, clipped to the
    /// signal length).
    pub fn filtfilt(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        self.filtfilt_into(x, &mut FiltFiltScratch::default(), &mut out);
        out
    }

    /// Scratch-reusing twin of [`SosCascade::filtfilt`]: clears and fills
    /// `out`, keeping the padded work buffer in `scratch` so repeated
    /// calls (the streaming hot loop) allocate nothing after warm-up.
    /// Bit-identical to [`SosCascade::filtfilt`].
    ///
    /// Runs the cascade-fused chain ([`kernels::filtfilt_fused`]): one
    /// register-chained sweep per direction, the backward pass iterating
    /// in reverse instead of flipping the buffer twice. Bit-identical to
    /// the per-section sweeps of [`SosCascade::filtfilt_into_reference`]
    /// (which longer-than-[`kernels::MAX_CHAIN_SECTIONS`] cascades fall
    /// back to).
    pub fn filtfilt_into(&self, x: &[f64], scratch: &mut FiltFiltScratch, out: &mut Vec<f64>) {
        if self.sections.len() > kernels::MAX_CHAIN_SECTIONS {
            self.filtfilt_into_reference(x, scratch, out);
            return;
        }
        let secs = self.fused_sections::<f64>();
        kernels::filtfilt_fused(&secs[..self.sections.len()], x, &mut scratch.ext, out);
    }

    /// Pre-fusion reference for [`SosCascade::filtfilt_into`]: builds the
    /// same odd-reflection extension, then sweeps per section in each
    /// direction with two physical buffer reversals. Kept for the
    /// equivalence suite and the legacy bench rows.
    pub fn filtfilt_into_reference(
        &self,
        x: &[f64],
        scratch: &mut FiltFiltScratch,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        if x.is_empty() || self.sections.is_empty() {
            out.extend_from_slice(x);
            return;
        }
        let pad = (6 * self.sections.len()).min(x.len() - 1).max(1);
        // Odd reflection: 2*x[0] - x[pad..1], signal, 2*x[n-1] - x[n-2..]
        let ext = &mut scratch.ext;
        ext.clear();
        ext.reserve(x.len() + 2 * pad);
        for i in (1..=pad).rev() {
            ext.push(2.0 * x[0] - x[i.min(x.len() - 1)]);
        }
        ext.extend_from_slice(x);
        let n = x.len();
        for i in 1..=pad {
            let idx = n.saturating_sub(1 + i.min(n - 1));
            ext.push(2.0 * x[n - 1] - x[idx]);
        }
        self.filter_in_place_reference(ext); // forward pass
        ext.reverse();
        self.filter_in_place_reference(ext); // backward pass
        ext.reverse();
        out.extend_from_slice(&ext[pad..pad + n]);
    }

    /// Magnitude response of the whole cascade at `f` Hz.
    pub fn magnitude_at(&self, f: f64, fs: f64) -> f64 {
        self.sections
            .iter()
            .map(|s| s.magnitude_at(f, fs))
            .product()
    }
}

/// Causal moving-average FIR of length `len`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `len == 0`.
pub fn moving_average(x: &[f64], len: usize) -> Result<Vec<f64>, DspError> {
    let mut out = Vec::new();
    moving_average_into(x, len, &mut out)?;
    Ok(out)
}

/// Scratch-reusing twin of [`moving_average`]: clears and refills `out`.
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `len == 0`.
pub fn moving_average_into(x: &[f64], len: usize, out: &mut Vec<f64>) -> Result<(), DspError> {
    if len == 0 {
        return Err(DspError::InvalidParameter {
            name: "len",
            reason: "must be >= 1",
        });
    }
    out.clear();
    out.reserve(x.len());
    let mut acc = 0.0;
    for (i, &xi) in x.iter().enumerate() {
        acc += xi;
        if i >= len {
            acc -= x[i - len];
        }
        let effective = (i + 1).min(len);
        // lint: allow(float-det) — exact integer→float cast (effective <= len).
        out.push(acc / effective as f64);
    }
    Ok(())
}

/// Five-point derivative used by Pan–Tompkins:
/// `y[n] = (2x[n] + x[n-1] - x[n-3] - 2x[n-4]) / 8` (scaled by `fs`).
pub fn five_point_derivative(x: &[f64], fs: f64) -> Vec<f64> {
    let mut out = Vec::new();
    five_point_derivative_into(x, fs, &mut out);
    out
}

/// Scratch-reusing twin of [`five_point_derivative`]: clears and refills
/// `out`.
pub fn five_point_derivative_into(x: &[f64], fs: f64, out: &mut Vec<f64>) {
    let n = x.len();
    let g = |i: isize| -> f64 {
        if i < 0 {
            x.first().copied().unwrap_or(0.0)
        } else {
            x[(i as usize).min(n - 1)]
        }
    };
    out.clear();
    out.reserve(n);
    out.extend(
        (0..n as isize).map(|i| (2.0 * g(i) + g(i - 1) - g(i - 3) - 2.0 * g(i - 4)) * fs / 8.0),
    );
}

/// Sliding median filter with odd window `len` (edges use shrunken windows).
///
/// # Errors
///
/// Returns [`DspError::InvalidParameter`] when `len` is even or zero.
pub fn median_filter(x: &[f64], len: usize) -> Result<Vec<f64>, DspError> {
    if len == 0 || len.is_multiple_of(2) {
        return Err(DspError::InvalidParameter {
            name: "len",
            reason: "must be odd and >= 1",
        });
    }
    let half = len / 2;
    let n = x.len();
    let mut out = Vec::with_capacity(n);
    // One reused window buffer; `total_cmp`-equal values are bit-identical,
    // so the unstable sort selects exactly the element the stable sort
    // would.
    let mut w: Vec<f64> = Vec::with_capacity(len);
    for i in 0..n {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        w.clear();
        w.extend_from_slice(&x[lo..hi]);
        w.sort_unstable_by(|a, b| a.total_cmp(b));
        out.push(w[w.len() / 2]);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(fs: f64, f: f64, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * PI * f * i as f64 / fs).sin())
            .collect()
    }

    fn rms_tail(x: &[f64]) -> f64 {
        let tail = &x[x.len() / 2..];
        crate::stats::rms(tail)
    }

    #[test]
    fn lowpass_passes_low_blocks_high() {
        let fs = 256.0;
        let lp = Biquad::butterworth_lowpass(10.0, fs).unwrap();
        let low = lp.filter(&tone(fs, 2.0, 2048));
        let high = lp.filter(&tone(fs, 80.0, 2048));
        assert!(rms_tail(&low) > 0.6);
        assert!(rms_tail(&high) < 0.05);
    }

    #[test]
    fn highpass_blocks_dc() {
        let fs = 128.0;
        let hp = Biquad::butterworth_highpass(5.0, fs).unwrap();
        let dc = hp.filter(&vec![1.0; 1024]);
        assert!(rms_tail(&dc) < 1e-3);
        let fast = hp.filter(&tone(fs, 30.0, 1024));
        assert!(rms_tail(&fast) > 0.6);
    }

    #[test]
    fn bandpass_magnitude_response() {
        let fs = 200.0;
        let bp = SosCascade::butterworth_bandpass(5.0, 15.0, fs, 1).unwrap();
        let centre = bp.magnitude_at(9.0, fs);
        let below = bp.magnitude_at(0.5, fs);
        let above = bp.magnitude_at(60.0, fs);
        assert!(centre > 0.7, "centre {centre}");
        assert!(below < 0.1, "below {below}");
        assert!(above < 0.1, "above {above}");
    }

    #[test]
    fn notch_kills_mains() {
        let fs = 256.0;
        let nf = Biquad::notch(50.0, 10.0, fs).unwrap();
        assert!(nf.magnitude_at(50.0, fs) < 0.02);
        assert!(nf.magnitude_at(10.0, fs) > 0.95);
        assert!(nf.magnitude_at(100.0, fs) > 0.9);
    }

    #[test]
    fn design_validates_corners() {
        assert!(Biquad::butterworth_lowpass(0.0, 100.0).is_err());
        assert!(Biquad::butterworth_lowpass(60.0, 100.0).is_err());
        assert!(Biquad::butterworth_highpass(-1.0, 100.0).is_err());
        assert!(Biquad::bandpass(10.0, 0.0, 100.0).is_err());
        assert!(SosCascade::butterworth_bandpass(15.0, 5.0, 100.0, 1).is_err());
        assert!(Biquad::butterworth_lowpass(10.0, 0.0).is_err());
    }

    #[test]
    fn filtfilt_has_zero_phase() {
        // A zero-phase filter keeps a slow tone aligned with itself.
        let fs = 100.0;
        let sig = tone(fs, 1.0, 600);
        let cascade = SosCascade::new(vec![Biquad::butterworth_lowpass(5.0, fs).unwrap()]);
        let out = cascade.filtfilt(&sig);
        assert_eq!(out.len(), sig.len());
        // Cross-correlation at zero lag should be near 1 (no delay).
        let num: f64 = sig.iter().zip(&out).map(|(a, b)| a * b).sum();
        let den = (sig.iter().map(|v| v * v).sum::<f64>() * out.iter().map(|v| v * v).sum::<f64>())
            .sqrt();
        assert!(num / den > 0.99, "corr {}", num / den);
    }

    #[test]
    fn filtfilt_identity_on_empty_cascade() {
        let sig = vec![1.0, 2.0, 3.0];
        let c = SosCascade::default();
        assert!(c.is_empty());
        assert_eq!(c.filtfilt(&sig), sig);
        assert_eq!(c.filter(&sig), sig);
    }

    #[test]
    fn moving_average_smooths() {
        let x = [0.0, 0.0, 3.0, 0.0, 0.0, 0.0];
        let y = moving_average(&x, 3).unwrap();
        assert!((y[2] - 1.0).abs() < 1e-12);
        assert!((y[3] - 1.0).abs() < 1e-12);
        assert!((y[4] - 1.0).abs() < 1e-12);
        assert!((y[5] - 0.0).abs() < 1e-12);
        assert!(moving_average(&x, 0).is_err());
    }

    #[test]
    fn moving_average_warmup_uses_effective_length() {
        let y = moving_average(&[2.0, 4.0], 4).unwrap();
        assert_eq!(y, vec![2.0, 3.0]);
    }

    #[test]
    fn derivative_of_ramp_is_constant() {
        let fs = 10.0;
        let ramp: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let d = five_point_derivative(&ramp, fs);
        // The classic Pan–Tompkins kernel has a pass-band gain of 1.25, so
        // a slope-1 ramp at fs=10 yields 12.5 on interior samples.
        for &v in &d[6..44] {
            assert!((v - 12.5).abs() < 1e-9, "{v}");
        }
    }

    #[test]
    fn median_filter_removes_spikes() {
        let mut x = vec![1.0; 20];
        x[10] = 100.0;
        let y = median_filter(&x, 5).unwrap();
        assert!((y[10] - 1.0).abs() < 1e-12);
        assert!(median_filter(&x, 4).is_err());
        assert!(median_filter(&x, 0).is_err());
    }

    #[test]
    fn in_place_and_into_variants_are_bit_identical() {
        let fs = 128.0;
        let sig: Vec<f64> = (0..512)
            .map(|i| (2.0 * PI * 7.0 * i as f64 / fs).sin() + 0.1 * (i as f64 * 0.7).cos())
            .collect();
        let cascade = SosCascade::butterworth_bandpass(5.0, 15.0, fs, 1).unwrap();

        let mut in_place = sig.clone();
        cascade.filter_in_place(&mut in_place);
        for (a, b) in cascade.filter(&sig).iter().zip(in_place.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        let mut scratch = FiltFiltScratch::default();
        let mut out = Vec::new();
        // Reuse the scratch twice: the second pass must still match.
        for _ in 0..2 {
            cascade.filtfilt_into(&sig, &mut scratch, &mut out);
            let reference = cascade.filtfilt(&sig);
            assert_eq!(out.len(), reference.len());
            for (a, b) in reference.iter().zip(out.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        let mut ma = Vec::new();
        moving_average_into(&sig, 19, &mut ma).unwrap();
        assert_eq!(ma, moving_average(&sig, 19).unwrap());
        let mut d = Vec::new();
        five_point_derivative_into(&sig, fs, &mut d);
        assert_eq!(d, five_point_derivative(&sig, fs));
    }

    #[test]
    fn fused_paths_match_reference_sweeps_bitwise() {
        let fs = 128.0;
        let sig: Vec<f64> = (0..611)
            .map(|i| (2.0 * PI * 6.0 * i as f64 / fs).sin() + 0.2 * (i as f64 * 1.3).cos())
            .collect();
        for n_sections in 1..=3usize {
            let cascade = SosCascade::butterworth_bandpass(5.0, 15.0, fs, n_sections).unwrap();
            let mut fused = sig.clone();
            cascade.filter_in_place(&mut fused);
            let mut swept = sig.clone();
            cascade.filter_in_place_reference(&mut swept);
            for (a, b) in fused.iter().zip(swept.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{n_sections} sections");
            }
            let mut scratch = FiltFiltScratch::default();
            let (mut ff, mut ff_ref) = (Vec::new(), Vec::new());
            cascade.filtfilt_into(&sig, &mut scratch, &mut ff);
            cascade.filtfilt_into_reference(&sig, &mut scratch, &mut ff_ref);
            assert_eq!(ff.len(), ff_ref.len());
            for (a, b) in ff.iter().zip(ff_ref.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{n_sections} sections");
            }
        }
    }

    #[test]
    fn identity_biquad_passes_through() {
        let x = [1.0, -2.0, 3.5];
        assert_eq!(Biquad::identity().filter(&x), x.to_vec());
    }
}
