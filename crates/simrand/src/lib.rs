#![forbid(unsafe_code)]
//! # simrand — offline stand-in for the `rand` crate
//!
//! This workspace builds in fully offline environments, so it vendors the
//! tiny subset of the `rand` 0.8 API that [`ecg_sim`] actually uses:
//! [`Rng::gen`], [`Rng::gen_range`] over `f64` ranges,
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator core is xoshiro256**
//! seeded through SplitMix64 — statistically solid for simulation and
//! fully deterministic across platforms (which the cohort-reproducibility
//! tests rely on).
//!
//! The crate is consumed under the dependency alias `rand`
//! (`rand = { package = "simrand", ... }`), so swapping the real `rand`
//! back in when a registry is reachable is a one-line manifest change.

use std::ops::Range;

/// Types samplable uniformly from raw generator output (the `Standard`
/// distribution of the real `rand`).
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Random-number generator interface (the used subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64-bit output word.
    fn next_u64(&mut self) -> u64;

    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty or non-finite range.
    fn gen_range(&mut self, range: Range<f64>) -> f64 {
        assert!(
            range.start < range.end && range.start.is_finite() && range.end.is_finite(),
            "invalid range {:?}",
            range
        );
        let u: f64 = self.gen();
        range.start + u * (range.end - range.start)
    }
}

/// Seedable construction (the used subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** generator — the workspace's deterministic `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E3779B97F4A7C15;
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// The used subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Debiased bounded sample (multiply-shift).
                let bound = (i + 1) as u64;
                let j = ((rng.next_u64() as u128 * bound as u128) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(42);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(43);
            (0..8).map(|_| r.gen::<u64>()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn f64_samples_are_unit_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..10_000).map(|_| r.gen::<f64>()).collect();
        assert!(xs.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.gen_range(1.0..1.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Overwhelmingly unlikely to be identity after shuffling 50 items.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
