//! unsafe-ledger positive fixture: undocumented `unsafe` sites.

fn read_first(xs: &[f64]) -> f64 {
    unsafe { *xs.as_ptr() }
}

struct Handle(*mut f64);

unsafe impl Send for Handle {}
