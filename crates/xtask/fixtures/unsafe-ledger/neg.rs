//! unsafe-ledger negative fixture: every site carries its
//! justification (`// SAFETY:` comment, or `# Safety` doc for fns).

fn read_first(xs: &[f64]) -> f64 {
    // SAFETY: caller-visible contract — `xs` is non-empty at every call
    // site in this fixture.
    unsafe { *xs.as_ptr() }
}

struct Handle(*mut f64);

// SAFETY: the pointee is owned by the sole dispatching thread.
unsafe impl Send for Handle {}

impl Handle {
    /// # Safety
    ///
    /// The pointer must be valid and exclusively borrowed.
    #[allow(dead_code)]
    unsafe fn get(&self) -> f64 {
        // SAFETY: caller contract above.
        unsafe { *self.0 }
    }
}
