//! waiver negative fixture: well-formed waivers in all three shapes —
//! trailing, standalone-above, and file-level.

// lint: allow-file(hot-index) — fixture exercises the file-level shape.

fn serve(values: &[f64], i: usize) -> f64 {
    let a = values.first().unwrap(); // lint: allow(hot-panic) — fixture invariant: callers pass non-empty panels.
    // lint: allow(hot-panic, hot-alloc) — standalone shape covering the next code line.
    let b = values.last().expect("non-empty");
    a + b + values[i]
}
