//! waiver-syntax positive fixture: malformed waivers are findings and
//! never suppress anything.

fn serve(values: &[f64]) -> f64 {
    // lint: allow(hot-panic)
    let a = values.first().unwrap();
    // lint: allow
    let b = values.last().unwrap();
    // lint: deny(hot-panic) — not a directive we know
    a + b
}
