//! float-det negative fixture: the approved conversion surface —
//! `impl Scalar for ...` / `trait Scalar` blocks may cast; everything
//! else uses the helpers (`from_f64` / `to_f64`) or stays width-stable.

trait Scalar: Copy {
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
}

impl Scalar for f32 {
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    fn to_f64(self) -> f64 {
        f64::from(self)
    }
}

fn kernel<T: Scalar>(xs: &[T], scale: f64) -> f64 {
    let mut acc = 0.0f64;
    for &v in xs {
        acc += v.to_f64() * scale;
    }
    acc
}
