//! float-det positive fixture: FMA and precision-changing casts in a
//! bit-identity-critical module.

fn kernel(xs: &[f32], scale: f64) -> f64 {
    let mut acc = 0.0f64;
    for (i, &v) in xs.iter().enumerate() {
        let w = f64::from(v) * (i as f64);
        acc = w.mul_add(scale, acc);
    }
    acc as f32 as f64
}
