//! hot-alloc positive fixture: allocation inside scratch-contract
//! functions (`*_into`, `*_in_place`, scratch-taking).

fn energy_into(xs: &[f64], out: &mut Vec<f64>) {
    let staged: Vec<f64> = xs.iter().map(|v| v * v).collect();
    out.extend_from_slice(&staged);
}

fn smooth_in_place(xs: &mut [f64]) {
    let copy = xs.to_vec();
    for (y, c) in xs.iter_mut().zip(&copy) {
        *y = 0.5 * (*y + c);
    }
}

fn windowed(xs: &[f64], scratch: &mut Vec<f64>) -> f64 {
    let label = format!("{} samples", xs.len());
    scratch.clear();
    scratch.extend_from_slice(xs);
    label.len() as f64
}
