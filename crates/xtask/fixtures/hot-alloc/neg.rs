//! hot-alloc negative fixture: the same functions written against the
//! scratch contract, plus an unconstrained builder that may allocate.

fn energy_into(xs: &[f64], out: &mut Vec<f64>) {
    out.clear();
    out.extend(xs.iter().map(|v| v * v));
}

fn smooth_in_place(xs: &mut [f64], scratch: &mut Vec<f64>) {
    scratch.clear();
    scratch.extend_from_slice(xs);
    for (y, c) in xs.iter_mut().zip(scratch.iter()) {
        *y = 0.5 * (*y + c);
    }
}

fn build_panel(n: usize) -> Vec<f64> {
    // Not `*_into` / `*_in_place` / scratch-taking: allocation is fine.
    let mut panel = Vec::with_capacity(n);
    panel.resize(n, 0.0);
    panel
}
