//! hot-panic positive fixture: every panic-family construct fires.

fn serve(values: &[f64]) -> f64 {
    let first = values.first().unwrap();
    let last = values.last().expect("non-empty");
    assert!(values.len() > 1, "need at least two");
    if values.is_empty() {
        panic!("empty panel");
    }
    first + last
}

fn arm(v: Option<f64>) -> f64 {
    match v {
        Some(x) => x,
        None => unreachable!("validated upstream"),
    }
}
