//! hot-panic negative fixture: the same shapes written panic-free.
//! `debug_assert!` compiles out of release and is deliberately allowed;
//! `#[cfg(test)]` items are stripped before the passes run.

fn serve(values: &[f64]) -> Option<f64> {
    let first = values.first()?;
    let last = values.last()?;
    debug_assert!(values.len() > 1, "need at least two");
    Some(first + last)
}

fn arm(v: Option<f64>) -> f64 {
    v.unwrap_or(0.0)
}

fn named_not_called(unwrap: f64, expect: f64) -> f64 {
    // Idents named like the methods, but not `.unwrap()` calls.
    unwrap + expect
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_panic() {
        let v = [1.0f64];
        assert!(v.first().unwrap() > 0.0);
    }
}
