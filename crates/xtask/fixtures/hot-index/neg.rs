//! hot-index negative fixture: brackets that are not index
//! expressions — types, array literals, attributes, slice patterns.

#[derive(Clone)]
struct Frame {
    taps: [f64; 4],
}

fn gather(xs: &[f64]) -> f64 {
    let zeros = [0.0f64; 3];
    let frame = Frame { taps: [1.0, 2.0, 3.0, 4.0] };
    let head = xs.first().copied().unwrap_or(0.0);
    let sum: f64 = frame.taps.iter().sum();
    if let [a, b, _] = zeros {
        return head + sum + a + b;
    }
    head + sum
}
