//! hot-index positive fixture: direct subscripts on values.

fn gather(xs: &[f64], idx: &[usize]) -> f64 {
    let mut acc = xs[0];
    for &i in idx {
        acc += xs[i];
    }
    let pair = (xs, idx);
    acc + pair.0[1]
}
