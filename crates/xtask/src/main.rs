#![forbid(unsafe_code)]
//! CLI for the repo-native static analysis. See the library docs
//! (`xtask` crate) and README "Static analysis" for the rule catalogue.
//!
//! ```text
//! cargo run -p xtask -- lint                 # lint, exit 1 on findings
//! cargo run -p xtask -- lint --write-ledger  # also regenerate UNSAFE_LEDGER.md
//! cargo run -p xtask -- lint --root DIR      # lint another workspace root
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = PathBuf::from(".");
    let mut write_ledger = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "--write-ledger" => write_ledger = true,
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => root = PathBuf::from(dir),
                    None => {
                        eprintln!("--root needs a directory argument");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!("usage: cargo run -p xtask -- lint [--write-ledger] [--root DIR]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if cmd != Some("lint") {
        eprintln!("usage: cargo run -p xtask -- lint [--write-ledger] [--root DIR]");
        return ExitCode::from(2);
    }

    // Accept being launched from a crate directory too: walk up to the
    // first directory holding a `crates/` tree.
    let mut base = root.canonicalize().unwrap_or(root);
    while !base.join("crates").is_dir() {
        match base.parent() {
            Some(p) => base = p.to_path_buf(),
            None => {
                eprintln!("no `crates/` tree found above the starting directory");
                return ExitCode::from(2);
            }
        }
    }

    match xtask::run_lint(&base, write_ledger) {
        Ok(report) => {
            for f in &report.findings {
                println!("{f}");
            }
            println!(
                "xtask lint: {} files, {} unsafe sites, {} finding{}{}",
                report.files,
                report.unsafe_sites.len(),
                report.findings.len(),
                if report.findings.len() == 1 { "" } else { "s" },
                if write_ledger {
                    " (ledger written)"
                } else {
                    ""
                },
            );
            if report.findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("xtask lint: i/o error: {e}");
            ExitCode::from(2)
        }
    }
}
