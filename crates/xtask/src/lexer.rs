//! Hand-rolled Rust lexer for the lint passes.
//!
//! Deliberately small: the rule passes only need a faithful token
//! stream (identifiers, literals, punctuation) with line numbers, plus
//! the comments on the side for `// SAFETY:` and waiver parsing. The
//! tricky part a regex-based scanner gets wrong — and the part this
//! lexer exists for — is making sure `unwrap` inside a string literal,
//! `unsafe` inside a nested block comment, or a `"]` inside a raw
//! string never reach the rules. Handles line/block (nested) comments,
//! string/byte/C-string literals with escapes, raw strings with any
//! hash depth, raw identifiers, char literals vs. lifetimes, and
//! numeric literals.

/// Kind of a lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `unsafe`, `unwrap`, ...).
    Ident,
    /// Lifetime (`'a`) — text excludes the quote.
    Lifetime,
    /// Numeric literal (`1.0e-3`, `0xFF`, `1_000f64`).
    Num,
    /// String-ish literal: `"..."`, `r#"..."#`, `b"..."`, `c"..."`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Single punctuation character.
    Punct,
}

/// One token: kind, source text, 1-based line of its first character.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True when this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment (line or block), with the `//` / `/*` markers stripped.
/// Block comments keep their interior verbatim; `line`..=`end_line`
/// spans the source lines the comment occupies.
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: u32,
    pub end_line: u32,
    pub text: String,
}

/// Lexer output: the token stream and the side list of comments.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_cont(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
}

impl Lexer {
    fn peek(&self, k: usize) -> Option<char> {
        self.chars.get(self.i + k).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    /// Consumes an escaped (non-raw) string body up to the closing
    /// `terminator`, honouring `\` escapes.
    fn escaped_body(&mut self, terminator: char) {
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == terminator {
                break;
            }
        }
    }

    /// Consumes a raw string body: `hashes` `#`s were seen after the
    /// prefix; the body ends at `"` followed by the same number of `#`s.
    fn raw_body(&mut self, hashes: usize) {
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut seen = 0;
                while seen < hashes && self.peek(0) == Some('#') {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
        }
    }

    /// At a string-literal prefix (`r`, `b`, `c`, `br`, `cr`) already
    /// consumed as `prefix` characters: returns true (and consumes the
    /// literal) when what follows is actually a string literal.
    fn try_string_after_prefix(&mut self, raw: bool) -> bool {
        if raw {
            let mut hashes = 0;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some('"') {
                for _ in 0..=hashes {
                    self.bump();
                }
                self.raw_body(hashes);
                return true;
            }
            false
        } else if self.peek(0) == Some('"') {
            self.bump();
            self.escaped_body('"');
            true
        } else {
            false
        }
    }
}

/// Lexes `src` into tokens + comments. Unterminated constructs consume
/// to end of input rather than erroring: a lint tool must never panic
/// on weird-but-compiling (or even non-compiling) source.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = lx.peek(0) {
        let line = lx.line;
        // Whitespace.
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        // Comments.
        if c == '/' && lx.peek(1) == Some('/') {
            lx.bump();
            lx.bump();
            let mut text = String::new();
            while let Some(c) = lx.peek(0) {
                if c == '\n' {
                    break;
                }
                text.push(c);
                lx.bump();
            }
            out.comments.push(Comment {
                line,
                end_line: line,
                text,
            });
            continue;
        }
        if c == '/' && lx.peek(1) == Some('*') {
            lx.bump();
            lx.bump();
            let mut depth = 1usize;
            let mut text = String::new();
            while let Some(c) = lx.bump() {
                if c == '/' && lx.peek(0) == Some('*') {
                    lx.bump();
                    depth += 1;
                    text.push_str("/*");
                } else if c == '*' && lx.peek(0) == Some('/') {
                    lx.bump();
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                    text.push_str("*/");
                } else {
                    text.push(c);
                }
            }
            out.comments.push(Comment {
                line,
                end_line: lx.line,
                text,
            });
            continue;
        }
        // String literal.
        if c == '"' {
            lx.bump();
            lx.escaped_body('"');
            out.toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            if lx.peek(1) == Some('\\') {
                // Escaped char literal: 'x' where x is an escape.
                lx.bump();
                lx.bump(); // the backslash
                lx.bump(); // the escaped char (enough for \u{..} too:
                           // the rest cannot contain an unescaped ')
                lx.escaped_body('\'');
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else if lx.peek(2) == Some('\'') && lx.peek(1).is_some_and(|c| c != '\'' && c != '\n')
            {
                // Plain one-char literal 'x' (including '_' and digits).
                lx.bump();
                lx.bump();
                lx.bump();
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text: String::new(),
                    line,
                });
            } else {
                // Lifetime: ' followed by an identifier, no closing '.
                lx.bump();
                let mut text = String::new();
                while lx.peek(0).is_some_and(is_ident_cont) {
                    text.push(lx.bump().unwrap_or('\0'));
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line,
                });
            }
            continue;
        }
        // Identifier, keyword, or prefixed string literal.
        if is_ident_start(c) {
            // String-literal prefixes must be checked before the ident
            // path eats the prefix letters.
            let (p0, p1) = (c, lx.peek(1));
            if p0 == 'r' && p1 != Some('#') {
                lx.bump();
                if lx.try_string_after_prefix(true) {
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    });
                    continue;
                }
                // Plain ident starting with r.
                let mut text = String::from('r');
                while lx.peek(0).is_some_and(is_ident_cont) {
                    text.push(lx.bump().unwrap_or('\0'));
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                continue;
            }
            if p0 == 'r' && p1 == Some('#') {
                // r#"..."# raw string or r#ident raw identifier.
                if lx.peek(2).is_some_and(|c| c == '"' || c == '#') {
                    lx.bump();
                    if lx.try_string_after_prefix(true) {
                        out.toks.push(Tok {
                            kind: TokKind::Str,
                            text: String::new(),
                            line,
                        });
                        continue;
                    }
                    // `r#` followed by more hashes but no quote: treat
                    // the consumed `r` as an ident and rescan.
                    out.toks.push(Tok {
                        kind: TokKind::Ident,
                        text: String::from("r"),
                        line,
                    });
                    continue;
                }
                // Raw identifier r#name: token text is `name`.
                lx.bump();
                lx.bump();
                let mut text = String::new();
                while lx.peek(0).is_some_and(is_ident_cont) {
                    text.push(lx.bump().unwrap_or('\0'));
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
                continue;
            }
            if (p0 == 'b' || p0 == 'c') && (p1 == Some('"') || (p0 == 'b' && p1 == Some('\''))) {
                lx.bump();
                if lx.peek(0) == Some('\'') {
                    // Byte char literal b'x'.
                    lx.bump();
                    if lx.peek(0) == Some('\\') {
                        lx.bump();
                        lx.bump();
                    } else {
                        lx.bump();
                    }
                    lx.escaped_body('\'');
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                } else {
                    lx.try_string_after_prefix(false);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    });
                }
                continue;
            }
            if (p0 == 'b' || p0 == 'c') && p1 == Some('r') {
                // br"..." / cr#"..."# raw strings.
                let mut probe = 2;
                while lx.peek(probe) == Some('#') {
                    probe += 1;
                }
                if lx.peek(probe) == Some('"') {
                    lx.bump();
                    lx.bump();
                    lx.try_string_after_prefix(true);
                    out.toks.push(Tok {
                        kind: TokKind::Str,
                        text: String::new(),
                        line,
                    });
                    continue;
                }
            }
            // Ordinary identifier / keyword.
            let mut text = String::new();
            while lx.peek(0).is_some_and(is_ident_cont) {
                text.push(lx.bump().unwrap_or('\0'));
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line,
            });
            continue;
        }
        // Numeric literal.
        if c.is_ascii_digit() {
            let mut text = String::new();
            let mut prev = '\0';
            while let Some(c) = lx.peek(0) {
                let take = c.is_ascii_alphanumeric()
                    || c == '_'
                    || (c == '.' && lx.peek(1).is_some_and(|d| d.is_ascii_digit()) && prev != '.')
                    || ((c == '+' || c == '-') && (prev == 'e' || prev == 'E'));
                if !take {
                    break;
                }
                prev = c;
                text.push(c);
                lx.bump();
            }
            out.toks.push(Tok {
                kind: TokKind::Num,
                text,
                line,
            });
            continue;
        }
        // Everything else: single-char punctuation.
        lx.bump();
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
    }
    out
}

/// Removes every `#[cfg(test)]`-gated item (attribute included) from
/// the token stream: the item after the attribute is skipped through
/// its brace-balanced body, or to the `;` for body-less items. Any
/// further attributes stacked between `#[cfg(test)]` and the item are
/// skipped with it.
pub fn strip_cfg_test(toks: Vec<Tok>) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's interior tokens.
            let mut j = i + 2;
            let mut depth = 1usize;
            let start = j;
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                }
                j += 1;
            }
            let interior = &toks[start..j.saturating_sub(1)];
            let is_cfg_test = interior.len() == 4
                && interior[0].is_ident("cfg")
                && interior[1].is_punct('(')
                && interior[2].is_ident("test")
                && interior[3].is_punct(')');
            if is_cfg_test {
                // Skip stacked attributes, then the item itself.
                while j < toks.len() && toks[j].is_punct('#') {
                    let mut depth = 0usize;
                    j += 1; // '#'
                    if j < toks.len() && toks[j].is_punct('[') {
                        loop {
                            if toks[j].is_punct('[') {
                                depth += 1;
                            } else if toks[j].is_punct(']') {
                                depth -= 1;
                            }
                            j += 1;
                            if depth == 0 || j >= toks.len() {
                                break;
                            }
                        }
                    }
                }
                let mut brace = 0usize;
                let mut entered = false;
                while j < toks.len() {
                    let t = &toks[j];
                    if t.is_punct('{') {
                        brace += 1;
                        entered = true;
                    } else if t.is_punct('}') {
                        brace = brace.saturating_sub(1);
                        if entered && brace == 0 {
                            j += 1;
                            break;
                        }
                    } else if t.is_punct(';') && !entered {
                        j += 1;
                        break;
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}
