//! The lint passes and the waiver machinery.
//!
//! Every rule reports [`Finding`]s against the stripped token stream of
//! one file (see [`crate::lexer`]); suppression happens afterwards via
//! waiver comments:
//!
//! * `// lint: allow(<rule>[, <rule>...]) — <reason>` waives findings
//!   on its own line (trailing comment) or on the next code line
//!   (standalone comment directly above the site);
//! * `// lint: allow-file(<rule>) — <reason>` waives a rule for the
//!   whole file (used where a pattern is the module's idiom, e.g.
//!   bounds-hoisted slice indexing in the fused kernels).
//!
//! A waiver without a written reason is itself a finding
//! (`waiver-syntax`): the justification is the point.

use crate::lexer::{Comment, Tok, TokKind};

/// One lint finding, pre- or post-waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based source line.
    pub line: u32,
    /// Rule identifier (`hot-panic`, `hot-index`, `hot-alloc`,
    /// `unsafe-ledger`, `float-det`, `waiver-syntax`).
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Which passes apply to a file (driven by its workspace-relative path;
/// see [`crate::classify`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct FileClass {
    /// Hot module: panic-family and slice-indexing bans apply.
    pub hot: bool,
    /// Bit-identity-critical module: float-determinism ban applies.
    pub float: bool,
    /// Allocation lint applies (all first-party source files; test,
    /// bench and example trees are exempt).
    pub alloc: bool,
}

/// A parsed waiver comment.
#[derive(Debug, Clone)]
pub struct Waiver {
    /// Rules this waiver names.
    pub rules: Vec<String>,
    /// Whole-file waiver (`allow-file`) vs. per-site (`allow`).
    pub file_level: bool,
    /// Line the waiver suppresses findings on (per-site only): the
    /// comment's own line for trailing comments, else the next line
    /// that carries any code token.
    pub covers_line: u32,
}

/// Parses every waiver in `comments`; malformed waivers come back as
/// `waiver-syntax` findings. `toks` is needed to resolve which code
/// line a standalone waiver comment covers.
pub fn parse_waivers(
    file: &str,
    comments: &[Comment],
    toks: &[Tok],
) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        let text = c.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = text.strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        let (file_level, rest) = if let Some(r) = rest.strip_prefix("allow-file") {
            (true, r)
        } else if let Some(r) = rest.strip_prefix("allow") {
            (false, r)
        } else {
            findings.push(Finding {
                file: file.into(),
                line: c.line,
                rule: "waiver-syntax",
                msg: format!("unrecognized lint directive: `lint:{rest}`"),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (rules, reason) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((inside, after)) => {
                let rules: Vec<String> = inside
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                (rules, after)
            }
            None => {
                findings.push(Finding {
                    file: file.into(),
                    line: c.line,
                    rule: "waiver-syntax",
                    msg: "waiver must name its rule(s): `lint: allow(<rule>) — <reason>`".into(),
                });
                continue;
            }
        };
        let reason = reason
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        if rules.is_empty() || reason.is_empty() {
            findings.push(Finding {
                file: file.into(),
                line: c.line,
                rule: "waiver-syntax",
                msg: "waiver needs a rule list and a written reason: \
                      `lint: allow(<rule>) — <reason>`"
                    .into(),
            });
            continue;
        }
        // Trailing comment waives its own line; a standalone comment
        // waives the next line that carries code.
        let covers_line = if toks.iter().any(|t| t.line == c.line) {
            c.line
        } else {
            toks.iter()
                .map(|t| t.line)
                .filter(|&l| l > c.end_line)
                .min()
                .unwrap_or(c.end_line)
        };
        waivers.push(Waiver {
            rules,
            file_level,
            covers_line,
        });
    }
    (waivers, findings)
}

/// Applies `waivers` to `findings`, dropping every suppressed finding.
/// `waiver-syntax` findings are never waivable.
pub fn apply_waivers(findings: Vec<Finding>, waivers: &[Waiver]) -> Vec<Finding> {
    findings
        .into_iter()
        .filter(|f| {
            if f.rule == "waiver-syntax" {
                return true;
            }
            !waivers.iter().any(|w| {
                w.rules.iter().any(|r| r == f.rule) && (w.file_level || w.covers_line == f.line)
            })
        })
        .collect()
}

/// Keywords that can directly precede a `[` without it being an index
/// expression (`&mut [f64]`, `dyn [..]`-ish type positions, `return [..]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "fn", "for", "if",
    "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return", "static",
    "struct", "super", "trait", "type", "unsafe", "use", "where", "while", "yield",
];

/// Macro names whose invocation panics (debug_assert* excluded: they
/// compile out of release hot paths by design).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Pass 1 — hot-path panic & indexing hygiene. In hot modules flags
/// `.unwrap()` / `.expect(...)`, panicking macros, and direct slice
/// indexing (`expr[...]`), all of which can abort a serving thread or
/// hide an unhoisted bounds check in a per-sample loop.
pub fn hot_panic_pass(file: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect") {
            let after_dot = i > 0 && toks[i - 1].is_punct('.');
            let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if after_dot && called {
                out.push(Finding {
                    file: file.into(),
                    line: t.line,
                    rule: "hot-panic",
                    msg: format!(
                        "`.{}()` in a hot module: return a typed error or waive with a \
                         written invariant",
                        t.text
                    ),
                });
            }
        }
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push(Finding {
                file: file.into(),
                line: t.line,
                rule: "hot-panic",
                msg: format!("`{}!` in a hot module", t.text),
            });
        }
    }
    out
}

/// Pass 1b — direct slice indexing in hot modules: `ident[`, `)[`, `][`
/// are index expressions; every other `[` (types, array literals,
/// attributes, macro brackets) has punctuation or a keyword before it.
pub fn hot_index_pass(file: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_punct('[') || i == 0 {
            continue;
        }
        let p = &toks[i - 1];
        let indexes = match p.kind {
            TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&p.text.as_str()),
            TokKind::Punct => p.is_punct(')') || p.is_punct(']'),
            // Tuple-field access: `pair.0[i]` — a number subscripted
            // only when it is itself a field projection.
            TokKind::Num => i >= 2 && toks[i - 2].is_punct('.'),
            _ => false,
        };
        if indexes {
            out.push(Finding {
                file: file.into(),
                line: t.line,
                rule: "hot-index",
                msg: "direct slice indexing in a hot module (panics on out-of-bounds; \
                      hoist the bounds check or waive with the invariant)"
                    .into(),
            });
        }
    }
    out
}

/// Allocation calls that defeat the `*_into` / scratch-reuse contract.
fn alloc_call(toks: &[Tok], i: usize) -> Option<&'static str> {
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let prev_path = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
    let path_head = prev_path.then(|| toks.get(i.saturating_sub(3))).flatten();
    let after_dot = i > 0 && toks[i - 1].is_punct('.');
    let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
    let banged = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
    match t.text.as_str() {
        "new" | "with_capacity" if prev_path && called => {
            match path_head.map(|h| h.text.as_str()) {
                Some("Vec" | "Box" | "String" | "VecDeque" | "HashMap" | "BTreeMap") => {
                    Some("constructor allocates")
                }
                _ => None,
            }
        }
        "from" if prev_path && called => match path_head.map(|h| h.text.as_str()) {
            Some("String") => Some("String::from allocates"),
            _ => None,
        },
        "vec" | "format" if banged => Some("allocating macro"),
        "to_vec" | "to_owned" | "to_string" | "collect" | "cloned" if after_dot && called => {
            Some("allocating adapter")
        }
        // `.clone()` is flagged; `Arc::clone(&x)` (refcount bump, no
        // heap traffic) deliberately is not.
        "clone" if after_dot && called => Some("clone allocates"),
        _ => None,
    }
}

/// Pass 2 — allocation inside hot-loop-shaped functions: any function
/// named `*_into` / `*_in_place`, or taking a scratch parameter, is
/// part of the allocation-free-after-warm-up contract (see README
/// "Performance"), so allocating calls inside it are findings.
pub fn hot_alloc_pass(file: &str, toks: &[Tok]) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        // Signature: from after the name to the body `{` (or `;` for
        // body-less trait methods).
        let mut j = i + 2;
        let mut body_start = None;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                body_start = Some(j);
                break;
            }
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(body_start) = body_start else {
            i = j + 1;
            continue;
        };
        let sig = &toks[i + 2..body_start];
        let scratch_taking = sig.iter().any(|t| {
            t.kind == TokKind::Ident && (t.text == "scratch" || t.text.ends_with("Scratch"))
        });
        let in_contract =
            name.text.ends_with("_into") || name.text.ends_with("_in_place") || scratch_taking;
        // Body extent via brace matching.
        let mut depth = 0usize;
        let mut body_end = toks.len();
        for (k, t) in toks.iter().enumerate().skip(body_start) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    body_end = k;
                    break;
                }
            }
        }
        if in_contract {
            for k in body_start..body_end {
                if let Some(why) = alloc_call(toks, k) {
                    out.push(Finding {
                        file: file.into(),
                        line: toks[k].line,
                        rule: "hot-alloc",
                        msg: format!(
                            "`{}` inside `{}` ({}): scratch-contract functions must be \
                             allocation-free after warm-up",
                            toks[k].text, name.text, why
                        ),
                    });
                }
            }
        }
        // Continue scanning after the signature; nested fns inside the
        // body are found by the normal scan (i advances token by token
        // through bodies of non-contract fns).
        i = body_start + 1;
    }
    out
}

/// Pass 4 — float determinism: in bit-identity-critical kernel/lane
/// modules, `mul_add` (FMA contracts the rounding step the staged
/// reference performs) and `as f32` / `as f64` casts (precision changes
/// outside the approved [`Scalar`] conversion helpers) are banned.
/// `impl Scalar for ...` and `trait Scalar` blocks are exempt — those
/// *are* the approved helpers.
pub fn float_det_pass(file: &str, toks: &[Tok]) -> Vec<Finding> {
    // Token ranges of `impl Scalar for ...` / `trait Scalar` bodies.
    let mut exempt: Vec<(usize, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        let headish = (t.is_ident("impl") || t.is_ident("trait"))
            && toks
                .iter()
                .skip(i + 1)
                .take(8)
                .take_while(|t| !t.is_punct('{'))
                .any(|t| t.is_ident("Scalar"));
        if !headish {
            continue;
        }
        let mut depth = 0usize;
        for (k, t) in toks.iter().enumerate().skip(i) {
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    exempt.push((i, k));
                    break;
                }
            }
        }
    }
    let exempted = |i: usize| exempt.iter().any(|&(a, b)| a <= i && i <= b);

    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if exempted(i) {
            continue;
        }
        if t.is_ident("mul_add") {
            out.push(Finding {
                file: file.into(),
                line: t.line,
                rule: "float-det",
                msg: "`mul_add` fuses the multiply-add rounding step: bit-identity with the \
                      staged reference expressions breaks"
                    .into(),
            });
        }
        if t.is_ident("as")
            && toks
                .get(i + 1)
                .is_some_and(|n| n.is_ident("f32") || n.is_ident("f64"))
        {
            let target = &toks[i + 1].text;
            out.push(Finding {
                file: file.into(),
                line: t.line,
                rule: "float-det",
                msg: format!(
                    "`as {target}` cast in a bit-identity-critical module: use the approved \
                     `Scalar` conversion helpers, or waive exact integer→float casts"
                ),
            });
        }
    }
    out
}
