//! The unsafe ledger: every `unsafe` site in the workspace must carry a
//! `// SAFETY:` comment (unsafe fns may instead document their contract
//! in a `# Safety` doc section), and the full inventory is rendered to
//! `UNSAFE_LEDGER.md` at the workspace root. CI regenerates the
//! inventory and fails on any difference, so growing the unsafe surface
//! is always an explicit, reviewed act.

use crate::lexer::{Comment, Tok};
use crate::rules::Finding;

/// What the `unsafe` keyword introduces at one site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
    Trait,
    Extern,
}

impl UnsafeKind {
    fn label(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Trait => "trait",
            UnsafeKind::Extern => "extern",
        }
    }
}

/// One inventoried `unsafe` site.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    pub file: String,
    pub kind: UnsafeKind,
    /// Trimmed source line of the `unsafe` token (ledger context).
    pub context: String,
    /// First line of the justification: text after `SAFETY:`, or the
    /// first content line of a `# Safety` doc section.
    pub safety: Option<String>,
}

/// Extracts the justification attached to the comment run that ends
/// directly above `line` (no blank line in between), or trails on
/// `line` itself. `allow_doc_safety` additionally accepts a `# Safety`
/// doc-section (the idiom for unsafe fns, whose inner operations carry
/// their own `// SAFETY:` blocks under `unsafe_op_in_unsafe_fn`).
fn safety_text(
    comments: &[Comment],
    lines: &[&str],
    line: u32,
    allow_doc_safety: bool,
) -> Option<String> {
    // The run of comments ending directly above `line`. Attribute lines
    // (`#[...]`) between the comment and the site do not break
    // adjacency — e.g. a doc-commented unsafe fn carrying a
    // `#[allow(...)]`.
    let is_attr = |n: u32| {
        lines
            .get(n as usize - 1)
            .map(|l| l.trim_start().starts_with("#["))
            .unwrap_or(false)
    };
    let mut run: Vec<&Comment> = Vec::new();
    let mut want = line - 1;
    while want > 0 && is_attr(want) {
        want -= 1;
    }
    while let Some(c) = comments.iter().rev().find(|c| c.end_line == want) {
        run.push(c);
        if c.line == 0 {
            break;
        }
        want = c.line - 1;
        while want > 0 && is_attr(want) {
            want -= 1;
        }
    }
    run.reverse();
    let trailing = comments.iter().find(|c| c.line == line);
    let all: Vec<&Comment> = run.into_iter().chain(trailing).collect();
    for (i, c) in all.iter().enumerate() {
        let text = c.text.trim_start_matches(['/', '!']).trim();
        if let Some(rest) = text.split("SAFETY:").nth(1) {
            let rest = rest.trim();
            if !rest.is_empty() {
                return Some(rest.to_string());
            }
            // `// SAFETY:` alone on a line: justification continues on
            // the next comment line.
            if let Some(next) = all.get(i + 1) {
                return Some(next.text.trim_start_matches(['/', '!']).trim().to_string());
            }
        }
        if allow_doc_safety && text.trim_start_matches('#').trim() == "Safety" {
            let next = all
                .get(i + 1)
                .map(|c| c.text.trim_start_matches(['/', '!']).trim())
                .filter(|t| !t.is_empty())
                .unwrap_or("contract documented in `# Safety` doc section");
            return Some(format!("(doc contract) {next}"));
        }
    }
    None
}

/// Scans one file's tokens for `unsafe` sites, checking each for its
/// justification. Returns the inventory plus findings for undocumented
/// sites. `lines` are the raw source lines (for ledger context).
pub fn unsafe_pass(
    file: &str,
    toks: &[Tok],
    comments: &[Comment],
    lines: &[&str],
) -> (Vec<UnsafeSite>, Vec<Finding>) {
    let mut sites = Vec::new();
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("unsafe") {
            continue;
        }
        let kind = match toks.get(i + 1) {
            Some(n) if n.is_punct('{') => UnsafeKind::Block,
            Some(n) if n.is_ident("fn") => UnsafeKind::Fn,
            Some(n) if n.is_ident("impl") => UnsafeKind::Impl,
            Some(n) if n.is_ident("trait") => UnsafeKind::Trait,
            Some(n) if n.is_ident("extern") => UnsafeKind::Extern,
            _ => UnsafeKind::Block,
        };
        let context = lines
            .get(t.line as usize - 1)
            .map(|l| l.trim())
            .unwrap_or("")
            .to_string();
        let safety = safety_text(comments, lines, t.line, kind == UnsafeKind::Fn);
        if safety.is_none() {
            findings.push(Finding {
                file: file.into(),
                line: t.line,
                rule: "unsafe-ledger",
                msg: format!(
                    "`unsafe` {} without an adjacent `// SAFETY:` comment{}",
                    kind.label(),
                    if kind == UnsafeKind::Fn {
                        " or `# Safety` doc section"
                    } else {
                        ""
                    }
                ),
            });
        }
        sites.push(UnsafeSite {
            file: file.into(),
            kind,
            context,
            safety,
        });
    }
    (sites, findings)
}

fn md_escape(s: &str) -> String {
    s.replace('|', "\\|")
}

fn clip(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max - 1).collect();
        format!("{cut}…")
    }
}

/// Renders the ledger markdown for `sites` (already in scan order:
/// files sorted, sites in source order within a file).
pub fn render_ledger(sites: &[UnsafeSite]) -> String {
    let mut out = String::new();
    out.push_str("# Unsafe ledger\n\n");
    out.push_str(
        "Machine-generated inventory of every `unsafe` site in the workspace.\n\
         Regenerate with `cargo run -p xtask -- lint --write-ledger`; CI fails\n\
         if this file differs from the regenerated inventory, so any change to\n\
         the unsafe surface is an explicit, reviewed act. Each site must carry\n\
         a `// SAFETY:` comment (unsafe fns may document their caller contract\n\
         in a `# Safety` doc section instead; their bodies still need\n\
         `// SAFETY:` on the inner blocks under `unsafe_op_in_unsafe_fn`).\n\n",
    );
    out.push_str(&format!("Total sites: {}\n", sites.len()));
    let mut file: Option<&str> = None;
    let mut ordinal = 0usize;
    for s in sites {
        if file != Some(s.file.as_str()) {
            file = Some(s.file.as_str());
            ordinal = 0;
            out.push_str(&format!("\n## `{}`\n\n", s.file));
            out.push_str("| # | kind | site | justification (first line) |\n");
            out.push_str("|---|------|------|----------------------------|\n");
        }
        ordinal += 1;
        out.push_str(&format!(
            "| {} | {} | `{}` | {} |\n",
            ordinal,
            s.kind.label(),
            md_escape(&clip(&s.context, 72)),
            md_escape(&clip(s.safety.as_deref().unwrap_or("**UNDOCUMENTED**"), 96)),
        ));
    }
    out
}
