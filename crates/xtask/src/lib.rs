#![forbid(unsafe_code)]
//! # xtask — repo-native static analysis
//!
//! Offline, dependency-free linter (`cargo run -p xtask -- lint`)
//! enforcing the three load-bearing contracts the serving stack is
//! built on (see README "Static analysis"):
//!
//! 1. **hot-panic / hot-index** — designated hot modules (streaming /
//!    fleet / DSP-kernel / SVM-kernel serving paths) stay free of
//!    panic-family calls and unhoisted slice indexing;
//! 2. **hot-alloc** — `*_into` / `*_in_place` / scratch-taking
//!    functions stay allocation-free after warm-up;
//! 3. **unsafe-ledger** — every `unsafe` site carries a `// SAFETY:`
//!    justification and appears in the committed `UNSAFE_LEDGER.md`;
//! 4. **float-det** — bit-identity-critical kernel/lane modules use no
//!    `mul_add` and no `as f32` / `as f64` casts outside the approved
//!    `Scalar` conversion helpers.
//!
//! Sites with a reviewed justification are waived in source:
//! `// lint: allow(<rule>) — <reason>` (same line or the line above) or
//! `// lint: allow-file(<rule>) — <reason>` for a whole file. Test code
//! (`#[cfg(test)]` items; `tests/`, `benches/`, `examples/` trees) is
//! exempt from the hot-path rules but still feeds the unsafe ledger.

pub mod ledger;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use ledger::UnsafeSite;
pub use rules::{FileClass, Finding};

use ledger::{render_ledger, unsafe_pass};
use rules::{
    apply_waivers, float_det_pass, hot_alloc_pass, hot_index_pass, hot_panic_pass, parse_waivers,
};

/// Committed ledger filename at the workspace root.
pub const LEDGER_FILE: &str = "UNSAFE_LEDGER.md";

/// Hot modules: the allocation-free, panic-free serving paths
/// (streaming ingest → extraction kernels → fleet flush → SVM kernel).
const HOT_MODULES: &[&str] = &[
    "crates/dsp/src/kernels.rs",
    "crates/dsp/src/lanes.rs",
    "crates/dsp/src/qrs.rs",
    "crates/dsp/src/filter.rs",
    "crates/core/src/fleet.rs",
    "crates/core/src/stream.rs",
    "crates/core/src/clock.rs",
    "crates/core/src/kernels.rs",
    "crates/svm/src/kernel.rs",
    "crates/svm/src/kernel/block.rs",
];

/// Bit-identity-critical modules: the fused/lane DSP kernels whose
/// expression ordering is pinned bit-for-bit against staged references.
const FLOAT_MODULES: &[&str] = &[
    "crates/dsp/src/kernels.rs",
    "crates/dsp/src/lanes.rs",
    "crates/dsp/src/qrs.rs",
    "crates/dsp/src/filter.rs",
];

/// Classifies a workspace-relative path (always `/`-separated) into the
/// passes that apply to it.
pub fn classify(rel: &str) -> FileClass {
    let testish =
        rel.contains("/tests/") || rel.contains("/benches/") || rel.contains("/examples/");
    FileClass {
        hot: HOT_MODULES.contains(&rel),
        float: FLOAT_MODULES.contains(&rel),
        alloc: !testish,
    }
}

/// Result of a full lint run.
#[derive(Debug, Default)]
pub struct Report {
    /// Post-waiver findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Full unsafe inventory (documented sites included).
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Files scanned.
    pub files: usize,
    /// The regenerated ledger markdown.
    pub ledger: String,
}

/// Lints one file's source text. Exposed for the fixture tests; the
/// workspace driver is [`run_lint`].
pub fn lint_source(rel: &str, src: &str, class: FileClass) -> (Vec<Finding>, Vec<UnsafeSite>) {
    let lexed = lexer::lex(src);
    let toks = lexer::strip_cfg_test(lexed.toks);
    let lines: Vec<&str> = src.lines().collect();

    let (waivers, mut findings) = parse_waivers(rel, &lexed.comments, &toks);
    let mut raw = Vec::new();
    if class.hot {
        raw.extend(hot_panic_pass(rel, &toks));
        raw.extend(hot_index_pass(rel, &toks));
    }
    if class.alloc {
        raw.extend(hot_alloc_pass(rel, &toks));
    }
    if class.float {
        raw.extend(float_det_pass(rel, &toks));
    }
    let (sites, unsafe_findings) = unsafe_pass(rel, &toks, &lexed.comments, &lines);
    raw.extend(unsafe_findings);
    findings.extend(apply_waivers(raw, &waivers));
    findings.sort_by(|a, b| (a.line, a.rule, &a.msg).cmp(&(b.line, b.rule, &b.msg)));
    findings.dedup();
    (findings, sites)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            // `fixtures/` holds deliberate rule violations for the
            // linter's own tests; `target/` is build output.
            if matches!(name, "target" | "fixtures" | ".git") {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Runs every pass over the workspace rooted at `root` (the directory
/// holding the top-level `Cargo.toml` and `crates/`). When
/// `write_ledger` is set the regenerated inventory is written to
/// [`LEDGER_FILE`]; otherwise a difference from the committed ledger is
/// a finding.
pub fn run_lint(root: &Path, write_ledger: bool) -> std::io::Result<Report> {
    let mut files = Vec::new();
    walk(&root.join("crates"), &mut files)?;

    let mut report = Report::default();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = std::fs::read_to_string(path)?;
        let (findings, sites) = lint_source(&rel, &src, classify(&rel));
        report.findings.extend(findings);
        report.unsafe_sites.extend(sites);
        report.files += 1;
    }

    report.ledger = render_ledger(&report.unsafe_sites);
    let ledger_path = root.join(LEDGER_FILE);
    if write_ledger {
        std::fs::write(&ledger_path, &report.ledger)?;
    } else {
        let committed = std::fs::read_to_string(&ledger_path).unwrap_or_default();
        if committed != report.ledger {
            report.findings.push(Finding {
                file: LEDGER_FILE.into(),
                line: 1,
                rule: "unsafe-ledger",
                msg: format!(
                    "{LEDGER_FILE} does not match the regenerated unsafe inventory \
                     ({} sites); run `cargo run -p xtask -- lint --write-ledger` \
                     and review the diff",
                    report.unsafe_sites.len()
                ),
            });
        }
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}
