//! Runs the full lint over the real workspace tree, exactly as the CI
//! step does. This is the gate that keeps the repo at zero findings and
//! the committed `UNSAFE_LEDGER.md` in sync with the actual inventory.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/xtask -> crates -> workspace root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask sits two levels under the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let report = xtask::run_lint(&root, false).expect("lint walk over the live tree");
    assert!(report.files > 50, "walk found only {} files", report.files);
    assert!(
        report.findings.is_empty(),
        "live tree has lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn committed_ledger_matches_inventory() {
    let root = workspace_root();
    let report = xtask::run_lint(&root, false).expect("lint walk over the live tree");
    let committed = std::fs::read_to_string(root.join(xtask::LEDGER_FILE))
        .expect("UNSAFE_LEDGER.md is committed at the workspace root");
    assert_eq!(
        committed, report.ledger,
        "UNSAFE_LEDGER.md is stale — regenerate with `cargo run -p xtask -- lint --write-ledger`"
    );
}

#[test]
fn every_unsafe_site_is_justified() {
    let root = workspace_root();
    let report = xtask::run_lint(&root, false).expect("lint walk over the live tree");
    for site in &report.unsafe_sites {
        assert!(
            site.safety.is_some(),
            "{}: unsafe site without SAFETY justification ({})",
            site.file,
            site.context
        );
    }
}
