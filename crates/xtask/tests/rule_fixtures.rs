//! One positive/negative fixture pair per rule, linted through the same
//! `lint_source` entry point the live walk uses. Positive fixtures must
//! produce at least one finding of their rule; negative fixtures must be
//! clean under the same (maximally strict) file classification.

use xtask::{lint_source, FileClass};

const ALL: FileClass = FileClass {
    hot: true,
    float: true,
    alloc: true,
};

fn findings(src: &str) -> Vec<xtask::Finding> {
    lint_source("fixture.rs", src, ALL).0
}

fn rules(src: &str) -> Vec<&'static str> {
    findings(src).into_iter().map(|f| f.rule).collect()
}

macro_rules! fixture {
    ($name:literal, $side:literal) => {
        include_str!(concat!("../fixtures/", $name, "/", $side, ".rs"))
    };
}

#[test]
fn hot_panic_pair() {
    let hits = rules(fixture!("hot-panic", "pos"));
    assert!(
        hits.iter().filter(|r| **r == "hot-panic").count() >= 5,
        "{hits:?}"
    );
    let clean = findings(fixture!("hot-panic", "neg"));
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn hot_index_pair() {
    let hits = rules(fixture!("hot-index", "pos"));
    assert!(
        hits.iter().filter(|r| **r == "hot-index").count() >= 3,
        "{hits:?}"
    );
    let clean = findings(fixture!("hot-index", "neg"));
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn hot_alloc_pair() {
    let hits = rules(fixture!("hot-alloc", "pos"));
    assert!(
        hits.iter().filter(|r| **r == "hot-alloc").count() >= 3,
        "{hits:?}"
    );
    let clean = findings(fixture!("hot-alloc", "neg"));
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn unsafe_ledger_pair() {
    let (finds, sites) = lint_source("fixture.rs", fixture!("unsafe-ledger", "pos"), ALL);
    let undocumented: Vec<_> = finds.iter().filter(|f| f.rule == "unsafe-ledger").collect();
    assert!(undocumented.len() >= 2, "{undocumented:?}");
    // Sites are inventoried even when undocumented — the ledger diff
    // catches them either way.
    assert!(sites.len() >= 2);

    let (clean, sites) = lint_source("fixture.rs", fixture!("unsafe-ledger", "neg"), ALL);
    assert!(clean.is_empty(), "{clean:?}");
    assert!(
        !sites.is_empty(),
        "documented sites still enter the inventory"
    );
    assert!(sites.iter().all(|s| s.safety.is_some()));
}

#[test]
fn float_det_pair() {
    let hits = rules(fixture!("float-det", "pos"));
    assert!(
        hits.iter().filter(|r| **r == "float-det").count() >= 3,
        "{hits:?}"
    );
    let clean = findings(fixture!("float-det", "neg"));
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn waiver_pair() {
    let hits = findings(fixture!("waiver", "pos"));
    // Every malformed waiver is itself a finding, and the panics it
    // failed to waive still surface.
    assert!(
        hits.iter().filter(|f| f.rule == "waiver-syntax").count() >= 2,
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|f| f.rule == "hot-panic"),
        "malformed waivers must not suppress: {hits:?}"
    );
    let clean = findings(fixture!("waiver", "neg"));
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn rules_only_fire_for_their_file_class() {
    let cold = FileClass {
        hot: false,
        float: false,
        alloc: false,
    };
    for name in ["hot-panic", "hot-index", "hot-alloc", "float-det"] {
        let src = match name {
            "hot-panic" => fixture!("hot-panic", "pos"),
            "hot-index" => fixture!("hot-index", "pos"),
            "hot-alloc" => fixture!("hot-alloc", "pos"),
            _ => fixture!("float-det", "pos"),
        };
        let finds = lint_source("fixture.rs", src, cold).0;
        assert!(
            finds.is_empty(),
            "{name} fired outside its class: {finds:?}"
        );
    }
}

#[test]
fn waiver_round_trip() {
    // The exact waiver grammar documented in the README: a finding
    // appears without the waiver and disappears with it, in all three
    // shapes.
    let bare = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert_eq!(rules(bare), vec!["hot-panic"]);

    let trailing = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(hot-panic) — fixture: caller checked.\n";
    assert!(findings(trailing).is_empty());

    let standalone = "// lint: allow(hot-panic) — fixture: caller checked.\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
    assert!(findings(standalone).is_empty());

    let file_level = "// lint: allow-file(hot-panic) — fixture: whole file is panic-tolerant.\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\nfn g(y: Option<u32>) -> u32 { y.unwrap() }\n";
    assert!(findings(file_level).is_empty());

    // A waiver for rule A does not leak onto rule B on the same line.
    let wrong_rule = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // lint: allow(hot-alloc) — fixture: wrong rule on purpose.\n";
    assert_eq!(rules(wrong_rule), vec!["hot-panic"]);
}

#[test]
fn waivers_inside_cfg_test_are_unnecessary() {
    // Test modules are stripped before rules run, so test-only panics
    // need no waivers at all.
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert_eq!(1 + 1, 2); Some(3).unwrap(); }\n}\n";
    assert!(findings(src).is_empty());
}
