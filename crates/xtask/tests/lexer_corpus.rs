//! Adversarial corpora for the hand-rolled lexer: constructs a
//! regex-based scanner gets wrong must never leak tokens into the rule
//! passes.

use xtask::lexer::{lex, strip_cfg_test, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .toks
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn string_contents_are_not_tokens() {
    let src = r#"let msg = "call .unwrap() inside unsafe { } now";"#;
    let ids = idents(src);
    assert!(!ids.iter().any(|t| t == "unwrap" || t == "unsafe"));
    assert!(ids.contains(&"let".to_string()));
    let strs = lex(src)
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .count();
    assert_eq!(strs, 1);
}

#[test]
fn raw_strings_with_hash_depth_swallow_quotes() {
    let src = "let re = r##\"quote \"# then .expect() and ] bracket\"##; after()";
    let ids = idents(src);
    assert!(!ids.iter().any(|t| t == "expect"));
    assert!(ids.contains(&"after".to_string()));
}

#[test]
fn byte_and_cstr_prefixes_are_strings_not_idents() {
    let src = r#"let a = b"unwrap"; let b = c"expect"; let c = br"panic"; let d = b'x';"#;
    let ids = idents(src);
    assert!(!ids
        .iter()
        .any(|t| t == "unwrap" || t == "expect" || t == "panic"));
    // `br` / `b` / `c` prefixes must not survive as identifiers either.
    assert!(!ids.iter().any(|t| t == "br"));
}

#[test]
fn r_prefixed_identifiers_still_lex_as_idents() {
    let ids = idents("let rate = ring[pos]; r#fn(); return rate;");
    assert!(ids.contains(&"rate".to_string()));
    assert!(ids.contains(&"ring".to_string()));
    // Raw identifier r#fn yields the ident `fn` (keyword-ness is the
    // rules' concern, not the lexer's).
    assert!(ids.contains(&"fn".to_string()));
}

#[test]
fn nested_block_comments_are_comments() {
    let src = "/* outer /* unsafe { } inner */ still comment .unwrap() */ fn f() {}";
    let lexed = lex(src);
    assert!(!lexed
        .toks
        .iter()
        .any(|t| t.is_ident("unsafe") || t.is_ident("unwrap")));
    assert_eq!(lexed.comments.len(), 1);
    assert!(lexed.comments[0].text.contains("inner"));
}

#[test]
fn char_literals_vs_lifetimes() {
    let src = "fn f<'a>(x: &'a [char]) { let c = 'x'; let n = '\\n'; let u = '\\u{1F600}'; }";
    let lexed = lex(src);
    let lifetimes: Vec<_> = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Lifetime)
        .collect();
    let chars = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Char)
        .count();
    assert_eq!(lifetimes.len(), 2);
    assert!(lifetimes.iter().all(|t| t.text == "a"));
    assert_eq!(chars, 3);
}

#[test]
fn numeric_literals_stay_single_tokens() {
    let lexed = lex("let x = 1.0e-3 + 0xFF_u32 + 1_000f64; for i in 0..n {}");
    let nums: Vec<_> = lexed
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Num)
        .map(|t| t.text.clone())
        .collect();
    assert_eq!(nums, vec!["1.0e-3", "0xFF_u32", "1_000f64", "0"]);
}

#[test]
fn line_numbers_survive_multiline_constructs() {
    let src = "line1();\n/* block\nspanning\nlines */\nline5();";
    let lexed = lex(src);
    let l5 = lexed.toks.iter().find(|t| t.is_ident("line5")).unwrap();
    assert_eq!(l5.line, 5);
    assert_eq!(lexed.comments[0].line, 2);
    assert_eq!(lexed.comments[0].end_line, 4);
}

#[test]
fn cfg_test_items_are_stripped() {
    let src = "fn hot() {}\n#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\nfn also_hot() {}";
    let toks = strip_cfg_test(lex(src).toks);
    assert!(!toks.iter().any(|t| t.is_ident("unwrap")));
    assert!(toks.iter().any(|t| t.is_ident("hot")));
    assert!(toks.iter().any(|t| t.is_ident("also_hot")));
}

#[test]
fn cfg_test_with_stacked_attributes_is_stripped() {
    let src = "#[cfg(test)]\n#[allow(dead_code)]\nfn t() { panic!() }\nfn keep() {}";
    let toks = strip_cfg_test(lex(src).toks);
    assert!(!toks.iter().any(|t| t.is_ident("panic")));
    assert!(toks.iter().any(|t| t.is_ident("keep")));
}

#[test]
fn cfg_attributes_that_are_not_test_survive() {
    let src = "#[cfg(feature = \"x\")]\nfn gated() { x.unwrap(); }";
    let toks = strip_cfg_test(lex(src).toks);
    assert!(toks.iter().any(|t| t.is_ident("unwrap")));
}

#[test]
fn unterminated_constructs_do_not_panic() {
    // A lint tool must survive arbitrary (even non-compiling) source.
    for src in ["let s = \"open", "/* never closed", "let r = r#\"open", "'"] {
        let _ = lex(src);
    }
}
