//! Mini-CACTI SRAM macro model.
//!
//! Follows the structure of CACTI [14 in the paper]: read energy has a
//! fixed decode/sense floor, a per-bit I/O term and a capacity-driven
//! bitline term (∝ √capacity for a square-ish array); area has a cell
//! array term plus periphery; leakage scales with capacity.

use crate::tech::TechParams;

/// One SRAM macro of `words × word_bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramMacro {
    /// Number of addressable words.
    pub words: usize,
    /// Word width in bits.
    pub word_bits: u32,
}

impl SramMacro {
    /// Total capacity in bits.
    pub fn capacity_bits(&self) -> u64 {
        self.words as u64 * self.word_bits as u64
    }

    /// Capacity in kilobits.
    pub fn capacity_kbit(&self) -> f64 {
        self.capacity_bits() as f64 / 1e3
    }

    /// Energy of one read access (pJ).
    pub fn read_energy_pj(&self, t: &TechParams) -> f64 {
        if self.capacity_bits() == 0 {
            return 0.0;
        }
        t.sram_read_base_pj
            + t.sram_read_pj_per_bit * self.word_bits as f64
            + t.sram_read_pj_per_sqrt_kbit * self.capacity_kbit().sqrt()
    }

    /// Macro area (mm²).
    pub fn area_mm2(&self, t: &TechParams) -> f64 {
        if self.capacity_bits() == 0 {
            return 0.0;
        }
        t.sram_area_mm2_per_mbit * self.capacity_bits() as f64 / 1e6 + t.sram_periphery_mm2
    }

    /// Leakage power (W).
    pub fn leakage_w(&self, t: &TechParams) -> f64 {
        t.sram_leak_w_per_mbit * self.capacity_bits() as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn capacity_accounting() {
        let m = SramMacro {
            words: 6360,
            word_bits: 64,
        };
        assert_eq!(m.capacity_bits(), 407_040);
        assert!((m.capacity_kbit() - 407.04).abs() < 1e-9);
    }

    #[test]
    fn bigger_memories_cost_more_per_read() {
        let small = SramMacro {
            words: 2040,
            word_bits: 9,
        };
        let large = SramMacro {
            words: 6360,
            word_bits: 64,
        };
        assert!(large.read_energy_pj(&t()) > small.read_energy_pj(&t()));
        assert!(large.area_mm2(&t()) > small.area_mm2(&t()));
        assert!(large.leakage_w(&t()) > small.leakage_w(&t()));
    }

    #[test]
    fn narrower_words_cost_less_per_read() {
        let wide = SramMacro {
            words: 1000,
            word_bits: 64,
        };
        let narrow = SramMacro {
            words: 1000,
            word_bits: 9,
        };
        assert!(narrow.read_energy_pj(&t()) < wide.read_energy_pj(&t()));
    }

    #[test]
    fn empty_macro_is_free() {
        let z = SramMacro {
            words: 0,
            word_bits: 9,
        };
        assert_eq!(z.read_energy_pj(&t()), 0.0);
        assert_eq!(z.area_mm2(&t()), 0.0);
        assert_eq!(z.leakage_w(&t()), 0.0);
    }

    #[test]
    fn baseline_macro_magnitudes() {
        // The paper's baseline SV memory: ~0.37 mm², tens of pJ per read.
        let m = SramMacro {
            words: 6360,
            word_bits: 64,
        };
        let a = m.area_mm2(&t());
        assert!(a > 0.3 && a < 0.5, "area {a}");
        let e = m.read_energy_pj(&t());
        assert!(e > 15.0 && e < 60.0, "read {e}");
    }
}
