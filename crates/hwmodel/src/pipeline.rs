//! The Fig 2 accelerator assembly and its cost report.
//!
//! Datapath per classification of one test vector:
//!
//! ```text
//! SV mem ──► MAC1 (D×D mult + acc) ──► +1 ──► trunc ──► SQ ──► trunc ──►
//!            MAC2 (×αy, A bits) ──► sign(acc + b) = class
//! ```
//!
//! Cycles ≈ `N_SV × N_feat` (MAC1 is the serial inner loop; the squarer
//! and MAC2 fire once per SV and overlap the next dot product).

use crate::ops::{Adder, Multiplier, RegisterBank};
use crate::sram::SramMacro;
use crate::tech::TechParams;

/// Ceil(log2(n)) for width bookkeeping (0 for n <= 1).
fn clog2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// A concrete accelerator design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcceleratorConfig {
    /// Number of support vectors stored in the SV memory.
    pub n_sv: usize,
    /// Feature-vector dimensionality.
    pub n_feat: usize,
    /// Feature (data) word width — the paper's `D_bits`.
    pub d_bits: u32,
    /// Coefficient (αy) word width — the paper's `A_bits`.
    pub a_bits: u32,
    /// LSBs discarded after the dot product (paper uses 10).
    pub post_dot_truncate: u32,
    /// LSBs discarded after the squarer (paper uses 10).
    pub post_square_truncate: u32,
    /// Parallel kernel lanes. The paper's Section II notes that "faster
    /// and more resource-hungry choices are possible, e.g., by computing
    /// multiple kernel functions in parallel"; `lanes > 1` replicates the
    /// MAC1/SQ/MAC2 datapath and banks the SV memory so `lanes` support
    /// vectors are processed concurrently, dividing latency while
    /// multiplying datapath area/energy overheads.
    pub lanes: u32,
}

impl AcceleratorConfig {
    /// Design point with separate data/coefficient widths and the paper's
    /// 10+10 LSB truncations.
    pub fn new(n_sv: usize, n_feat: usize, d_bits: u32, a_bits: u32) -> Self {
        AcceleratorConfig {
            n_sv,
            n_feat,
            d_bits,
            a_bits,
            post_dot_truncate: 10,
            post_square_truncate: 10,
            lanes: 1,
        }
    }

    /// Returns a copy with `lanes` parallel kernel lanes (≥ 1).
    pub fn with_lanes(mut self, lanes: u32) -> Self {
        self.lanes = lanes.max(1);
        self
    }

    /// Homogeneous design point (`D_bits = A_bits = bits`, no truncation)
    /// — the 64/32/16-bit reference pipelines of Fig 7.
    pub fn uniform(n_sv: usize, n_feat: usize, bits: u32) -> Self {
        AcceleratorConfig {
            n_sv,
            n_feat,
            d_bits: bits,
            a_bits: bits,
            post_dot_truncate: 0,
            post_square_truncate: 0,
            lanes: 1,
        }
    }

    /// Width of the MAC1 accumulator: product width plus accumulation
    /// guard bits plus one for the `+1` constant.
    pub fn acc1_bits(&self) -> u32 {
        2 * self.d_bits + clog2(self.n_feat.max(1)) + 1
    }

    /// Width entering the squarer (after post-dot truncation), at least 2.
    pub fn kernel_in_bits(&self) -> u32 {
        self.acc1_bits()
            .saturating_sub(self.post_dot_truncate)
            .max(2)
    }

    /// Width leaving the squarer (after post-square truncation).
    pub fn kernel_out_bits(&self) -> u32 {
        (2 * self.kernel_in_bits())
            .saturating_sub(self.post_square_truncate)
            .max(2)
    }

    /// Width of the MAC2 accumulator.
    pub fn acc2_bits(&self) -> u32 {
        self.kernel_out_bits() + self.a_bits + clog2(self.n_sv.max(1))
    }

    /// Classification latency in cycles: `lanes` support vectors are
    /// processed concurrently.
    pub fn cycles(&self) -> u64 {
        let lanes = self.lanes.max(1) as u64;
        let sv_groups = (self.n_sv as u64).div_ceil(lanes);
        sv_groups * (self.n_feat as u64) + 2 * sv_groups + self.n_feat as u64
    }

    /// SV memory macro.
    pub fn sv_memory(&self) -> SramMacro {
        SramMacro {
            words: self.n_sv * self.n_feat,
            word_bits: self.d_bits,
        }
    }

    /// Coefficient (αy) memory macro.
    pub fn coeff_memory(&self) -> SramMacro {
        SramMacro {
            words: self.n_sv,
            word_bits: self.a_bits,
        }
    }

    /// Scale-factor memory macro (one 6-bit exponent per feature; only
    /// present for tailored designs, i.e. when truncation is enabled).
    pub fn scale_memory(&self) -> SramMacro {
        if self.post_dot_truncate == 0 && self.post_square_truncate == 0 {
            // Homogeneous pipeline: a single global scale needs no memory.
            SramMacro {
                words: 0,
                word_bits: 6,
            }
        } else {
            SramMacro {
                words: self.n_feat,
                word_bits: 6,
            }
        }
    }

    /// Evaluates the full cost of this design point.
    pub fn cost(&self, t: &TechParams) -> CostReport {
        let lanes = self.lanes.max(1) as f64;
        let mac1_mult = Multiplier::square(self.d_bits);
        let mac1_add = Adder {
            bits: self.acc1_bits(),
        };
        let sq_mult = Multiplier::square(self.kernel_in_bits());
        let mac2_mult = Multiplier {
            a_bits: self.kernel_out_bits(),
            b_bits: self.a_bits,
        };
        let mac2_add = Adder {
            bits: self.acc2_bits(),
        };
        let regs = RegisterBank {
            bits: 2 * self.d_bits + self.acc1_bits() + self.kernel_out_bits() + self.acc2_bits(),
        };
        let sv_mem = self.sv_memory();
        let coeff_mem = self.coeff_memory();
        let scale_mem = self.scale_memory();

        let n_sv = self.n_sv as f64;
        let n_mac1 = n_sv * self.n_feat as f64;
        let cycles = self.cycles();

        // Dynamic energy (pJ).
        let e_mac1 = n_mac1 * (mac1_mult.energy_pj(t) + mac1_add.energy_pj(t));
        let e_square = n_sv * sq_mult.energy_pj(t);
        let e_mac2 = n_sv * (mac2_mult.energy_pj(t) + mac2_add.energy_pj(t));
        let e_regs = cycles as f64 * regs.energy_pj(t) * lanes;
        let e_sram = n_mac1 * sv_mem.read_energy_pj(t)
            + n_sv * coeff_mem.read_energy_pj(t)
            + self.n_feat as f64 * scale_mem.read_energy_pj(t);
        let e_ctrl = cycles as f64 * t.ctrl_energy_pj_per_cycle * (1.0 + 0.3 * (lanes - 1.0));

        // Area (mm²).
        let a_logic = lanes
            * (mac1_mult.area_mm2(t)
                + mac1_add.area_mm2(t)
                + sq_mult.area_mm2(t)
                + mac2_mult.area_mm2(t)
                + mac2_add.area_mm2(t)
                + regs.area_mm2(t))
            + t.ctrl_area_mm2 * (1.0 + 0.2 * (lanes - 1.0));
        let a_sram = sv_mem.area_mm2(t) + coeff_mem.area_mm2(t) + scale_mem.area_mm2(t);
        let area = a_logic + a_sram;

        // Leakage integrated over the classification latency.
        let latency_s = cycles as f64 / t.clock_hz;
        let p_leak = sv_mem.leakage_w(t)
            + coeff_mem.leakage_w(t)
            + scale_mem.leakage_w(t)
            + t.logic_leak_w_per_mm2 * a_logic;
        let e_leak_pj = p_leak * latency_s * 1e12;

        let dynamic = e_mac1 + e_square + e_mac2 + e_regs + e_sram + e_ctrl;
        CostReport {
            energy_nj: (dynamic + e_leak_pj) / 1e3,
            area_mm2: area,
            cycles,
            latency_s,
            energy_mac1_nj: e_mac1 / 1e3,
            energy_square_nj: e_square / 1e3,
            energy_mac2_nj: e_mac2 / 1e3,
            energy_sram_nj: e_sram / 1e3,
            energy_ctrl_nj: (e_ctrl + e_regs) / 1e3,
            energy_leak_nj: e_leak_pj / 1e3,
            area_logic_mm2: a_logic,
            area_sram_mm2: a_sram,
        }
    }
}

/// Cost of one design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Total energy for classifying one test vector (nJ).
    pub energy_nj: f64,
    /// Total silicon area (mm²).
    pub area_mm2: f64,
    /// Classification latency in cycles.
    pub cycles: u64,
    /// Classification latency in seconds.
    pub latency_s: f64,
    /// MAC1 (dot product) dynamic energy (nJ).
    pub energy_mac1_nj: f64,
    /// Squarer dynamic energy (nJ).
    pub energy_square_nj: f64,
    /// MAC2 (coefficient accumulation) dynamic energy (nJ).
    pub energy_mac2_nj: f64,
    /// Memory read energy (nJ).
    pub energy_sram_nj: f64,
    /// Control + pipeline-register energy (nJ).
    pub energy_ctrl_nj: f64,
    /// Leakage energy over the classification latency (nJ).
    pub energy_leak_nj: f64,
    /// Logic area (mm²).
    pub area_logic_mm2: f64,
    /// Memory area (mm²).
    pub area_sram_mm2: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn width_bookkeeping() {
        let c = AcceleratorConfig::new(68, 30, 9, 15);
        assert_eq!(c.acc1_bits(), 2 * 9 + 5 + 1); // clog2(30) = 5
        assert_eq!(c.kernel_in_bits(), 24 - 10);
        assert_eq!(c.kernel_out_bits(), 28 - 10);
        assert_eq!(c.acc2_bits(), 18 + 15 + 7); // clog2(68) = 7
        assert_eq!(c.cycles(), 68 * 30 + 136 + 30);
    }

    #[test]
    fn clog2_edges() {
        assert_eq!(clog2(0), 0);
        assert_eq!(clog2(1), 0);
        assert_eq!(clog2(2), 1);
        assert_eq!(clog2(53), 6);
        assert_eq!(clog2(64), 6);
        assert_eq!(clog2(65), 7);
    }

    #[test]
    fn baseline_calibration_matches_paper_magnitudes() {
        // 64-bit, 53 features, ~120 SVs → ≈ 2 µJ, ≈ 0.4 mm² (Figs 4–5).
        let cost = AcceleratorConfig::uniform(120, 53, 64).cost(&t());
        assert!(
            cost.energy_nj > 1000.0 && cost.energy_nj < 3500.0,
            "energy {} nJ",
            cost.energy_nj
        );
        assert!(
            cost.area_mm2 > 0.25 && cost.area_mm2 < 0.6,
            "area {} mm²",
            cost.area_mm2
        );
    }

    #[test]
    fn fully_optimised_point_reaches_paper_gains() {
        // Combined optimisation (Fig 7): ≥ ~10× energy, ≥ ~12× area.
        let base = AcceleratorConfig::uniform(120, 53, 64).cost(&t());
        let opt = AcceleratorConfig::new(68, 30, 9, 15).cost(&t());
        let e_gain = base.energy_nj / opt.energy_nj;
        let a_gain = base.area_mm2 / opt.area_mm2;
        assert!(e_gain > 8.0 && e_gain < 30.0, "energy gain {e_gain}");
        assert!(a_gain > 10.0 && a_gain < 30.0, "area gain {a_gain}");
    }

    #[test]
    fn energy_is_monotone_in_each_knob() {
        let base = AcceleratorConfig::new(100, 40, 12, 15).cost(&t());
        assert!(AcceleratorConfig::new(120, 40, 12, 15).cost(&t()).energy_nj > base.energy_nj);
        assert!(AcceleratorConfig::new(100, 50, 12, 15).cost(&t()).energy_nj > base.energy_nj);
        assert!(AcceleratorConfig::new(100, 40, 16, 15).cost(&t()).energy_nj > base.energy_nj);
        assert!(AcceleratorConfig::new(100, 40, 12, 17).cost(&t()).energy_nj > base.energy_nj);
    }

    #[test]
    fn area_is_dominated_by_sv_memory_at_baseline() {
        let cost = AcceleratorConfig::uniform(120, 53, 64).cost(&t());
        assert!(cost.area_sram_mm2 > cost.area_logic_mm2);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let c = AcceleratorConfig::new(68, 30, 9, 15).cost(&t());
        let sum = c.energy_mac1_nj
            + c.energy_square_nj
            + c.energy_mac2_nj
            + c.energy_sram_nj
            + c.energy_ctrl_nj
            + c.energy_leak_nj;
        assert!((sum - c.energy_nj).abs() < 1e-9);
        assert!((c.area_logic_mm2 + c.area_sram_mm2 - c.area_mm2).abs() < 1e-12);
    }

    #[test]
    fn homogeneous_scale_memory_is_free_tailored_is_not() {
        let hom = AcceleratorConfig::uniform(100, 53, 32);
        assert_eq!(hom.scale_memory().capacity_bits(), 0);
        let tai = AcceleratorConfig::new(100, 53, 9, 15);
        assert_eq!(tai.scale_memory().capacity_bits(), 53 * 6);
    }

    #[test]
    fn truncation_narrows_downstream_operators() {
        let no_trunc = AcceleratorConfig {
            post_dot_truncate: 0,
            post_square_truncate: 0,
            ..AcceleratorConfig::new(100, 53, 9, 15)
        };
        let trunc = AcceleratorConfig::new(100, 53, 9, 15);
        assert!(trunc.kernel_in_bits() < no_trunc.kernel_in_bits());
        assert!(trunc.cost(&t()).energy_nj < no_trunc.cost(&t()).energy_nj);
    }

    #[test]
    fn lanes_trade_latency_for_area() {
        let single = AcceleratorConfig::new(120, 53, 9, 15);
        let quad = single.with_lanes(4);
        assert_eq!(quad.lanes, 4);
        // Latency shrinks ~4x.
        assert!(quad.cycles() * 3 < single.cycles());
        let cs = single.cost(&t());
        let cq = quad.cost(&t());
        assert!(cq.latency_s < cs.latency_s / 3.0);
        // Datapath area grows with replication.
        assert!(cq.area_logic_mm2 > 3.0 * cs.area_logic_mm2);
        // Memory is banked, not replicated: total SRAM area unchanged.
        assert!((cq.area_sram_mm2 - cs.area_sram_mm2).abs() < 1e-12);
        // The op count is fixed, so dynamic MAC energy is unchanged.
        assert!((cq.energy_mac1_nj - cs.energy_mac1_nj).abs() < 1e-9);
    }

    #[test]
    fn with_lanes_clamps_to_one() {
        let c = AcceleratorConfig::new(10, 5, 9, 15).with_lanes(0);
        assert_eq!(c.lanes, 1);
        assert_eq!(c.cycles(), AcceleratorConfig::new(10, 5, 9, 15).cycles());
    }

    #[test]
    fn degenerate_configs_do_not_panic() {
        let z = AcceleratorConfig::new(0, 0, 9, 15);
        let c = z.cost(&t());
        assert!(c.energy_nj >= 0.0);
        assert_eq!(c.cycles, 0);
        let tiny = AcceleratorConfig::new(1, 1, 2, 2).cost(&t());
        assert!(tiny.energy_nj > 0.0);
    }
}
