//! Arithmetic operator cost laws.

use crate::tech::TechParams;

/// A two's-complement array multiplier with asymmetric operand widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Multiplier {
    /// First operand width in bits.
    pub a_bits: u32,
    /// Second operand width in bits.
    pub b_bits: u32,
}

impl Multiplier {
    /// Square multiplier (both operands `bits` wide).
    pub fn square(bits: u32) -> Self {
        Multiplier {
            a_bits: bits,
            b_bits: bits,
        }
    }

    /// Energy of one multiplication (pJ): the partial-product array scales
    /// with `a_bits × b_bits`.
    pub fn energy_pj(&self, t: &TechParams) -> f64 {
        t.mult_energy_pj_per_bit2 * self.a_bits as f64 * self.b_bits as f64
    }

    /// Silicon area (mm²).
    pub fn area_mm2(&self, t: &TechParams) -> f64 {
        t.mult_area_mm2_per_bit2 * self.a_bits as f64 * self.b_bits as f64
    }

    /// Product width.
    pub fn out_bits(&self) -> u32 {
        self.a_bits + self.b_bits
    }
}

/// A ripple/prefix adder of the given width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adder {
    /// Operand width in bits.
    pub bits: u32,
}

impl Adder {
    /// Energy of one addition (pJ).
    pub fn energy_pj(&self, t: &TechParams) -> f64 {
        t.adder_energy_pj_per_bit * self.bits as f64
    }

    /// Silicon area (mm²).
    pub fn area_mm2(&self, t: &TechParams) -> f64 {
        t.adder_area_mm2_per_bit * self.bits as f64
    }
}

/// A bank of pipeline registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterBank {
    /// Total flip-flop count (bits).
    pub bits: u32,
}

impl RegisterBank {
    /// Energy per clocked cycle (pJ).
    pub fn energy_pj(&self, t: &TechParams) -> f64 {
        t.reg_energy_pj_per_bit * self.bits as f64
    }

    /// Silicon area (mm²).
    pub fn area_mm2(&self, t: &TechParams) -> f64 {
        t.reg_area_mm2_per_bit * self.bits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TechParams {
        TechParams::default()
    }

    #[test]
    fn multiplier_scales_quadratically() {
        let m64 = Multiplier::square(64);
        let m9 = Multiplier::square(9);
        let e_ratio = m64.energy_pj(&t()) / m9.energy_pj(&t());
        let a_ratio = m64.area_mm2(&t()) / m9.area_mm2(&t());
        let expect = (64.0f64 / 9.0).powi(2);
        assert!((e_ratio - expect).abs() < 1e-9);
        assert!((a_ratio - expect).abs() < 1e-9);
        assert_eq!(m64.out_bits(), 128);
    }

    #[test]
    fn asymmetric_multiplier() {
        let m = Multiplier {
            a_bits: 24,
            b_bits: 15,
        };
        assert_eq!(m.out_bits(), 39);
        assert!((m.energy_pj(&t()) - 0.039 * 360.0).abs() < 1e-9);
    }

    #[test]
    fn adder_and_register_scale_linearly() {
        let tp = t();
        assert!(
            (Adder { bits: 64 }.energy_pj(&tp) / Adder { bits: 16 }.energy_pj(&tp) - 4.0).abs()
                < 1e-12
        );
        assert!(
            (RegisterBank { bits: 64 }.area_mm2(&tp) / RegisterBank { bits: 32 }.area_mm2(&tp)
                - 2.0)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn mult_dominates_adder_at_same_width() {
        let tp = t();
        assert!(Multiplier::square(16).energy_pj(&tp) > Adder { bits: 16 }.energy_pj(&tp));
    }
}
