//! Calibrated 40 nm low-power technology constants.
//!
//! Every constant is a calibration knob, chosen so the paper's baseline
//! design point (64-bit datapath, 53 features, ~120 SVs) costs ≈ 2 µJ per
//! classification and ≈ 0.4 mm² — the magnitudes of Figs 4–5 — while
//! preserving the scaling laws that drive all of the paper's conclusions.

/// Technology/calibration parameters for the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Multiplier energy coefficient: `E = c · b₁ · b₂` (pJ per bit²).
    pub mult_energy_pj_per_bit2: f64,
    /// Adder energy coefficient: `E = c · b` (pJ per bit).
    pub adder_energy_pj_per_bit: f64,
    /// Pipeline-register energy coefficient (pJ per bit per cycle),
    /// including local clock load.
    pub reg_energy_pj_per_bit: f64,
    /// Fixed per-cycle control/clock-tree energy floor (pJ).
    pub ctrl_energy_pj_per_cycle: f64,
    /// Multiplier area: `A = c · b₁ · b₂` (mm² per bit²).
    pub mult_area_mm2_per_bit2: f64,
    /// Adder area (mm² per bit).
    pub adder_area_mm2_per_bit: f64,
    /// Register area (mm² per bit).
    pub reg_area_mm2_per_bit: f64,
    /// Fixed control/FSM area (mm²).
    pub ctrl_area_mm2: f64,
    /// SRAM fixed read energy per access (pJ): decoder + sense floor.
    pub sram_read_base_pj: f64,
    /// SRAM read energy per word bit (pJ/bit): bitline + I/O.
    pub sram_read_pj_per_bit: f64,
    /// SRAM read energy growth with capacity (pJ per √kbit).
    pub sram_read_pj_per_sqrt_kbit: f64,
    /// SRAM cell-array area density (mm² per Mbit).
    pub sram_area_mm2_per_mbit: f64,
    /// SRAM per-macro periphery area (mm²).
    pub sram_periphery_mm2: f64,
    /// SRAM leakage (W per Mbit).
    pub sram_leak_w_per_mbit: f64,
    /// Logic leakage density (W per mm²).
    pub logic_leak_w_per_mm2: f64,
    /// Accelerator clock (Hz); WBSN accelerators run slow to stay at the
    /// low-leakage voltage corner.
    pub clock_hz: f64,
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams {
            mult_energy_pj_per_bit2: 0.039,
            adder_energy_pj_per_bit: 0.030,
            reg_energy_pj_per_bit: 0.100,
            ctrl_energy_pj_per_cycle: 28.0,
            mult_area_mm2_per_bit2: 2.9e-6,
            adder_area_mm2_per_bit: 1.5e-5,
            reg_area_mm2_per_bit: 5.0e-6,
            ctrl_area_mm2: 0.002,
            sram_read_base_pj: 6.0,
            sram_read_pj_per_bit: 0.25,
            sram_read_pj_per_sqrt_kbit: 0.35,
            sram_area_mm2_per_mbit: 0.90,
            sram_periphery_mm2: 0.0015,
            sram_leak_w_per_mbit: 20.0e-6,
            logic_leak_w_per_mm2: 20.0e-6,
            clock_hz: 10.0e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let t = TechParams::default();
        for v in [
            t.mult_energy_pj_per_bit2,
            t.adder_energy_pj_per_bit,
            t.reg_energy_pj_per_bit,
            t.ctrl_energy_pj_per_cycle,
            t.mult_area_mm2_per_bit2,
            t.adder_area_mm2_per_bit,
            t.reg_area_mm2_per_bit,
            t.ctrl_area_mm2,
            t.sram_read_base_pj,
            t.sram_read_pj_per_bit,
            t.sram_read_pj_per_sqrt_kbit,
            t.sram_area_mm2_per_mbit,
            t.sram_periphery_mm2,
            t.sram_leak_w_per_mbit,
            t.logic_leak_w_per_mm2,
            t.clock_hz,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn calibration_sanity_64bit_multiplier() {
        // 64×64 multiplier ≈ 160 pJ — in line with synthesised 40 nm
        // combinational multipliers including glitching.
        let t = TechParams::default();
        let e = t.mult_energy_pj_per_bit2 * 64.0 * 64.0;
        assert!(e > 100.0 && e < 250.0, "{e}");
    }
}
