#![forbid(unsafe_code)]
//! # hwmodel — parametric 40 nm cost model for the SVM inference accelerator
//!
//! The paper evaluates every design point by synthesising the Fig 2
//! pipeline (SV memory → MAC1 → squarer → MAC2) in a 40 nm technology and
//! reporting energy per classification and silicon area. A real synthesis
//! flow is not redistributable, so this crate provides a calibrated
//! analytical stand-in with the same *scaling structure*:
//!
//! * operator energy/area laws: multipliers scale ≈ quadratically with
//!   operand width, adders/registers linearly ([`ops`]);
//! * a mini-CACTI SRAM model: read energy and area driven by capacity and
//!   word width, leakage by capacity ([`sram`]);
//! * the accelerator assembly ([`pipeline`]): bit-exact operator widths
//!   derived from `D_bits`/`A_bits`/truncations, cycles ≈ `N_SV × N_feat`,
//!   leakage integrated over the classification latency.
//!
//! Absolute constants ([`tech::TechParams`]) are calibrated so the paper's
//! 64-bit / 53-feature / un-budgeted baseline lands near 2 µJ and
//! 0.4 mm² (Figs 4–5); all experimental conclusions depend on ratios, not
//! absolutes — see DESIGN.md.
//!
//! ## Example
//!
//! ```
//! use hwmodel::pipeline::AcceleratorConfig;
//! use hwmodel::tech::TechParams;
//!
//! let tech = TechParams::default();
//! let base = AcceleratorConfig::uniform(120, 53, 64).cost(&tech);
//! let opt = AcceleratorConfig::new(68, 30, 9, 15).cost(&tech);
//! assert!(base.energy_nj / opt.energy_nj > 5.0);
//! assert!(base.area_mm2 / opt.area_mm2 > 5.0);
//! ```

pub mod ops;
pub mod pipeline;
pub mod sram;
pub mod tech;

pub use pipeline::{AcceleratorConfig, CostReport};
pub use tech::TechParams;
