//! The unified inference interface every classifier backend implements.
//!
//! [`ClassifierEngine`] is the seam between *what* classifies (the float
//! SVM, the shift-normalised reference pipeline, the bit-accurate
//! quantised engine) and *how* it is driven (batch LOSO evaluation,
//! design-space sweeps, the streaming monitor). Callers hold a
//! `Box<dyn ClassifierEngine>` / `Arc<dyn ClassifierEngine>` and stay
//! agnostic of the backend, so the float and quantised paths are
//! interchangeable end to end — the property the streaming-vs-batch
//! equivalence tests pin per backend.

use crate::model::SvmModel;
use ecg_features::DenseMatrix;

/// **The** seizure decision boundary: a decision value `d` means seizure
/// iff `d >= 0.0` (ties positive — the hardware sign-bit convention,
/// where a non-negative accumulator reads as class `+1`).
///
/// Every layer that turns a decision value into a class — trait
/// `classify` defaults, batch classify kernels, the quantised float
/// simulation, streaming window decisions, confusion counting and the
/// alarm state machine — routes through this helper, so the boundary
/// convention cannot fork again. (It once did: batch confusion counting
/// used `> 0.0` while everything else used `>= 0.0`, silently
/// disagreeing on boundary windows.)
#[inline]
pub fn decision_is_seizure(d: f64) -> bool {
    d >= 0.0
}

/// Maps a decision value onto the paper's `±1.0` class labels through
/// [`decision_is_seizure`].
#[inline]
pub fn class_of_decision(d: f64) -> f64 {
    if decision_is_seizure(d) {
        1.0
    } else {
        -1.0
    }
}

/// Cost metadata of a classifier backend — the quantities the hardware
/// model prices (`N_SV`, `N_feat`, operand widths) plus a display kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineInfo {
    /// Backend kind, e.g. `"svm-model"`, `"float-pipeline"`,
    /// `"quantized-engine"`.
    pub kind: &'static str,
    /// Support-vector count (`N_SV` of the paper's cost model).
    pub n_support_vectors: usize,
    /// Feature count the decision function consumes (`N_feat`).
    pub n_features: usize,
    /// Feature operand width, when the backend quantises (`D_bits`).
    pub d_bits: Option<u32>,
    /// Coefficient operand width, when the backend quantises (`A_bits`).
    pub a_bits: Option<u32>,
}

impl EngineInfo {
    /// Multiply-accumulate count of one decision (`N_SV × N_feat` kernel
    /// dot products plus the `N_SV` coefficient MACs) — the workload
    /// number throughput benchmarks normalise by.
    pub fn macs_per_decision(&self) -> usize {
        self.n_support_vectors * self.n_features + self.n_support_vectors
    }
}

/// A trained two-class decision function over raw feature rows.
///
/// Implementors consume *raw* (un-normalised, full-width) feature rows —
/// any selection, shift-normalisation or quantisation is the backend's
/// own business — so every backend is drop-in interchangeable behind
/// `dyn ClassifierEngine`.
///
/// Contract pinned by the test suites:
///
/// * `classify` returns exactly `+1.0` (seizure) or `-1.0`, and agrees
///   with the sign of `decision` (ties positive, the hardware sign-bit
///   convention);
/// * the batch variants are bit-identical to mapping the row variants
///   over `rows.rows()` — they exist so backends can hoist per-batch
///   work (normalise once, reuse code buffers) without changing results.
pub trait ClassifierEngine: Send + Sync {
    /// Decision value `f(x)` on one raw feature row: positive ⇒ seizure.
    ///
    /// The scale is backend-defined (margin-like for float backends,
    /// accumulator LSBs for integer ones); only comparisons within one
    /// backend are meaningful.
    fn decision(&self, row: &[f64]) -> f64;

    /// Predicted class on one raw feature row: `+1.0` or `-1.0`
    /// (boundary set by [`decision_is_seizure`]).
    fn classify(&self, row: &[f64]) -> f64 {
        class_of_decision(self.decision(row))
    }

    /// Decision values for every row of a raw dense batch.
    fn decision_batch(&self, rows: &DenseMatrix<f64>) -> Vec<f64> {
        rows.rows().map(|r| self.decision(r)).collect()
    }

    /// Appends the decision value of every borrowed row to `out`, in
    /// order — the panel-serving entry point for callers whose rows
    /// live scattered across per-session buffers (no dense gather
    /// copy). Bit-identical to mapping [`ClassifierEngine::decision`]
    /// over `rows`; backends override it to hoist per-panel work
    /// exactly like `decision_batch` does for dense batches.
    fn decision_rows_into(&self, rows: &[&[f64]], out: &mut Vec<f64>) {
        out.extend(rows.iter().map(|r| self.decision(r)));
    }

    /// Predicted classes for every row of a raw dense batch.
    fn classify_batch(&self, rows: &DenseMatrix<f64>) -> Vec<f64> {
        rows.rows().map(|r| self.classify(r)).collect()
    }

    /// Feature count the decision function consumes.
    fn n_features(&self) -> usize;

    /// Cost metadata (SV count, widths) for pricing and reporting.
    fn info(&self) -> EngineInfo;
}

/// The bare SVM is an engine over already-normalised rows (its "raw" input
/// is whatever space it was trained in).
impl ClassifierEngine for SvmModel {
    fn decision(&self, row: &[f64]) -> f64 {
        self.decision_value(row)
    }

    fn classify(&self, row: &[f64]) -> f64 {
        self.predict(row)
    }

    /// SV-panel-tiled batch kernel
    /// ([`crate::kernel::block::decision_batch_into`]); bit-identical to
    /// mapping `decision` over the rows.
    fn decision_batch(&self, rows: &DenseMatrix<f64>) -> Vec<f64> {
        let mut out = Vec::new();
        crate::kernel::block::decision_batch_into(
            self.kernel(),
            rows,
            self.support_vectors(),
            self.sv_sq_norms(),
            self.alpha_y(),
            self.bias(),
            &mut out,
        );
        out
    }

    /// Gathers the borrowed rows into one dense panel and runs the
    /// SV-panel-tiled batch kernel over it — same datapath as
    /// `decision_batch`, so the row refs cost one gather copy, not a
    /// per-row kernel restart.
    fn decision_rows_into(&self, rows: &[&[f64]], out: &mut Vec<f64>) {
        let mut panel = DenseMatrix::with_cols(SvmModel::n_features(self));
        for row in rows {
            panel.push_row(row);
        }
        out.extend(self.decision_batch(&panel));
    }

    /// Sign of the tiled batch decisions (ties positive).
    fn classify_batch(&self, rows: &DenseMatrix<f64>) -> Vec<f64> {
        self.decision_batch(rows)
            .into_iter()
            .map(class_of_decision)
            .collect()
    }

    fn n_features(&self) -> usize {
        SvmModel::n_features(self)
    }

    fn info(&self) -> EngineInfo {
        EngineInfo {
            kind: "svm-model",
            n_support_vectors: self.n_support_vectors(),
            n_features: SvmModel::n_features(self),
            d_bits: None,
            a_bits: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;

    fn toy_model() -> SvmModel {
        SvmModel::from_parts(
            Kernel::Linear,
            DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![-1.0, 0.0]]),
            vec![0.5, 0.5],
            vec![1.0, -1.0],
            0.0,
        )
    }

    #[test]
    fn trait_matches_inherent_methods() {
        let m = toy_model();
        let e: &dyn ClassifierEngine = &m;
        for row in [[2.0, 5.0], [-0.3, 1.0], [0.0, 0.0]] {
            assert_eq!(e.decision(&row).to_bits(), m.decision_value(&row).to_bits());
            assert_eq!(e.classify(&row), m.predict(&row));
        }
        assert_eq!(ClassifierEngine::n_features(&m), 2);
    }

    #[test]
    fn batch_defaults_match_row_variants() {
        let m = toy_model();
        let e: &dyn ClassifierEngine = &m;
        let batch = DenseMatrix::from_rows(&[vec![2.0, 5.0], vec![-0.3, 1.0], vec![0.0, 0.0]]);
        let dec = e.decision_batch(&batch);
        let cls = e.classify_batch(&batch);
        for (i, row) in batch.rows().enumerate() {
            assert_eq!(dec[i].to_bits(), e.decision(row).to_bits());
            assert_eq!(cls[i], e.classify(row));
        }
    }

    #[test]
    fn rows_into_matches_decision_batch_and_appends() {
        let m = toy_model();
        let e: &dyn ClassifierEngine = &m;
        let storage = [vec![2.0, 5.0], vec![-0.3, 1.0], vec![0.0, 0.0]];
        let refs: Vec<&[f64]> = storage.iter().map(Vec::as_slice).collect();
        let batch = DenseMatrix::from_rows(&storage);
        let expect = e.decision_batch(&batch);
        // Appends after existing contents, both through the SvmModel
        // override and the per-row trait default.
        let mut out = vec![f64::NAN];
        e.decision_rows_into(&refs, &mut out);
        assert_eq!(out.len(), 1 + refs.len());
        for (got, want) in out[1..].iter().zip(&expect) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
        struct PerRow(SvmModel);
        impl ClassifierEngine for PerRow {
            fn decision(&self, row: &[f64]) -> f64 {
                self.0.decision_value(row)
            }
            fn n_features(&self) -> usize {
                self.0.n_features()
            }
            fn info(&self) -> EngineInfo {
                ClassifierEngine::info(&self.0)
            }
        }
        let mut dflt = Vec::new();
        PerRow(toy_model()).decision_rows_into(&refs, &mut dflt);
        for (got, want) in dflt.iter().zip(&expect) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn zero_decision_is_seizure_everywhere() {
        // The shared boundary: exactly-zero decisions are seizure (+1).
        assert!(decision_is_seizure(0.0));
        assert!(decision_is_seizure(-0.0));
        assert!(decision_is_seizure(f64::MIN_POSITIVE));
        assert!(!decision_is_seizure(-f64::MIN_POSITIVE));
        assert_eq!(class_of_decision(0.0), 1.0);
        assert_eq!(class_of_decision(-0.0), 1.0);
        assert_eq!(class_of_decision(-1e-300), -1.0);
        // A model whose decision is exactly 0.0 classifies as +1 through
        // the trait default, the inherent predict and the tiled batch.
        let m = toy_model(); // linear: f(x) = x0
        let e: &dyn ClassifierEngine = &m;
        assert_eq!(e.decision(&[0.0, 7.0]), 0.0);
        assert_eq!(e.classify(&[0.0, 7.0]), 1.0);
        assert_eq!(m.predict(&[0.0, 7.0]), 1.0);
        let batch = DenseMatrix::from_rows(&[vec![0.0, 7.0]]);
        assert_eq!(e.classify_batch(&batch), vec![1.0]);
    }

    #[test]
    fn info_carries_cost_metadata() {
        let m = toy_model();
        let info = ClassifierEngine::info(&m);
        assert_eq!(info.kind, "svm-model");
        assert_eq!(info.n_support_vectors, 2);
        assert_eq!(info.n_features, 2);
        assert_eq!(info.d_bits, None);
        assert_eq!(info.macs_per_decision(), 2 * 2 + 2);
    }
}
