//! Float micro-kernels: the one place every float decision path computes
//! its dots and kernel values.
//!
//! Three ideas, shared by per-row inference ([`decision`]), batch
//! inference ([`decision_batch_into`]) and the SMO Gram fill
//! ([`kernel_row_into`]):
//!
//! * **fixed-order 4-accumulator dot** ([`dot4`]) — four independent
//!   partial sums over `chunks_exact(4)` plus a sequential tail, combined
//!   as `(s0 + s1) + (s2 + s3) + tail`. The order is *fixed*, so every
//!   caller gets bit-identical values for the same operand pair;
//! * **precomputed squared norms** ([`sq_norms`]) — the RBF kernel is
//!   evaluated as `exp(-γ·(‖u‖² + ‖v‖² − 2·u·v))`, turning the per-pair
//!   distance loop into one dot product against cached norms;
//! * **SV-panel tiling** — the batch kernel walks the support-vector
//!   block in panels of [`SV_PANEL`] rows and streams every test row
//!   against the hot panel, so a panel is read from cache `n_rows` times
//!   instead of main memory. Per test row the accumulation order is still
//!   bias-then-SVs-in-order, i.e. **bit-identical** to [`decision`].
//!
//! Switching the zip-fold dot to this module changes float summation
//! order (and the RBF distance form), so decision values may drift from
//! the pre-micro-kernel code by O(ε); the equivalence suite pins that
//! drift at ≤ 1e-12 with identical classifications on a real cohort,
//! while per-row / batch / streaming paths remain *mutually* bit-exact.

// lint: allow-file(hot-index) — panel-tiled kernel: row/SV subscripts are loop
// indices bounded by `n_rows`/`n_sv`, the lengths of the slices they index.
use crate::kernel::Kernel;
use ecg_features::DenseMatrix;

/// Support-vector rows per cache tile of the batch kernel.
pub const SV_PANEL: usize = 32;

/// Fixed-order 4-accumulator dot product: the workspace-wide float dot
/// micro-kernel ([`crate::kernel::dot`] delegates here).
///
/// # Panics
///
/// Panics in debug builds when lengths differ.
#[inline]
pub fn dot4(u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    let mut cu = u.chunks_exact(4);
    let mut cv = v.chunks_exact(4);
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (a, b) in (&mut cu).zip(&mut cv) {
        s0 += a[0] * b[0];
        s1 += a[1] * b[1];
        s2 += a[2] * b[2];
        s3 += a[3] * b[3];
    }
    let mut tail = 0.0f64;
    for (a, b) in cu.remainder().iter().zip(cv.remainder()) {
        tail += a * b;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Squared Euclidean norm of one row via the shared dot micro-kernel.
#[inline]
pub fn sq_norm(u: &[f64]) -> f64 {
    dot4(u, u)
}

/// Per-row squared norms of a dense block — the cache that lets RBF run
/// on plain dots (`‖u − v‖² = ‖u‖² + ‖v‖² − 2·u·v`).
pub fn sq_norms(rows: &DenseMatrix<f64>) -> Vec<f64> {
    rows.rows().map(sq_norm).collect()
}

/// Whether `kernel` consumes the precomputed squared norms (only RBF
/// does; dot-product kernels ignore them).
#[inline]
pub fn uses_norms(kernel: Kernel) -> bool {
    matches!(kernel, Kernel::Rbf { .. })
}

/// Kernel evaluation through the micro-kernel: one [`dot4`] plus the
/// kernel's scalar tail. `u_sq`/`v_sq` are the operands' squared norms
/// (ignored unless [`uses_norms`]). The RBF distance is clamped at 0 —
/// cancellation in the norm form can produce `-ε` where the direct
/// difference form is exactly ≥ 0.
#[inline]
pub fn eval_prenorm(kernel: Kernel, u: &[f64], u_sq: f64, v: &[f64], v_sq: f64) -> f64 {
    match kernel {
        Kernel::Linear => dot4(u, v),
        Kernel::Polynomial { degree } => (dot4(u, v) + 1.0).powi(degree as i32),
        Kernel::Rbf { gamma } => {
            let d2 = (u_sq + v_sq - 2.0 * dot4(u, v)).max(0.0);
            (-gamma * d2).exp()
        }
    }
}

/// Fills `out` with `k(x, rowᵢ)` for every row of `rows` — the SMO Gram
/// row fill. `x_sq` is `x`'s squared norm, `row_sq` the rows' norms
/// (both ignored unless [`uses_norms`]; pass empty slices then).
pub fn kernel_row_into(
    kernel: Kernel,
    x: &[f64],
    x_sq: f64,
    rows: &DenseMatrix<f64>,
    row_sq: &[f64],
    out: &mut Vec<f64>,
) {
    out.clear();
    out.reserve(rows.n_rows());
    if uses_norms(kernel) {
        out.extend(
            rows.rows()
                .zip(row_sq.iter())
                .map(|(r, &r_sq)| eval_prenorm(kernel, x, x_sq, r, r_sq)),
        );
    } else {
        out.extend(rows.rows().map(|r| eval_prenorm(kernel, x, 0.0, r, 0.0)));
    }
}

/// One decision value through the micro-kernel:
/// `bias + Σᵢ αᵢyᵢ·k(x, svᵢ)` with the accumulation fixed at
/// bias-first-then-SV-order — the order the batch kernel reproduces.
pub fn decision(
    kernel: Kernel,
    x: &[f64],
    svs: &DenseMatrix<f64>,
    sv_sq: &[f64],
    alpha_y: &[f64],
    bias: f64,
) -> f64 {
    let x_sq = if uses_norms(kernel) { sq_norm(x) } else { 0.0 };
    let mut acc = bias;
    for (sv, (&ay, &v_sq)) in svs.rows().zip(alpha_y.iter().zip(sv_sq.iter())) {
        acc += ay * eval_prenorm(kernel, x, x_sq, sv, v_sq);
    }
    acc
}

/// Batch decision values, SV-panel tiled: clears and refills `out` with
/// one value per row of `rows`, bit-identical to mapping [`decision`]
/// over the rows.
///
/// Panels walk the SV block in order and every row accumulates its
/// panel-partial sums in SV order on top of the bias, so the per-row
/// addition sequence is exactly the per-row kernel's.
pub fn decision_batch_into(
    kernel: Kernel,
    rows: &DenseMatrix<f64>,
    svs: &DenseMatrix<f64>,
    sv_sq: &[f64],
    alpha_y: &[f64],
    bias: f64,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.resize(rows.n_rows(), bias);
    let row_sq: Vec<f64> = if uses_norms(kernel) {
        sq_norms(rows)
    } else {
        // lint: allow(hot-alloc) — `Vec::new` does not allocate: empty
        // placeholder for kernels without norm terms.
        Vec::new()
    };
    let n_sv = svs.n_rows();
    let mut panel_start = 0usize;
    while panel_start < n_sv {
        let panel_end = (panel_start + SV_PANEL).min(n_sv);
        for (i, x) in rows.rows().enumerate() {
            let x_sq = if uses_norms(kernel) { row_sq[i] } else { 0.0 };
            let mut acc = out[i];
            for j in panel_start..panel_end {
                let v_sq = if uses_norms(kernel) { sv_sq[j] } else { 0.0 };
                acc += alpha_y[j] * eval_prenorm(kernel, x, x_sq, svs.row(j), v_sq);
            }
            out[i] = acc;
        }
        panel_start = panel_end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// xorshift64* row generator for deterministic sweeps.
    struct XorShift(u64);

    impl XorShift {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        fn f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0
        }

        fn row(&mut self, n: usize) -> Vec<f64> {
            (0..n).map(|_| self.f64()).collect()
        }
    }

    #[test]
    fn dot4_matches_reference_within_eps() {
        let mut rng = XorShift(7);
        for len in [0, 1, 2, 3, 4, 5, 7, 8, 12, 53, 100] {
            let u = rng.row(len);
            let v = rng.row(len);
            let reference: f64 = u.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
            let got = dot4(&u, &v);
            assert!(
                (got - reference).abs() <= 1e-12 * (1.0 + reference.abs()),
                "len {len}: {got} vs {reference}"
            );
        }
    }

    #[test]
    fn dot4_is_deterministic_and_order_fixed() {
        let mut rng = XorShift(9);
        let u = rng.row(53);
        let v = rng.row(53);
        assert_eq!(dot4(&u, &v).to_bits(), dot4(&u, &v).to_bits());
    }

    #[test]
    fn sq_norm_is_dot_with_self() {
        let mut rng = XorShift(11);
        let u = rng.row(19);
        assert_eq!(sq_norm(&u).to_bits(), dot4(&u, &u).to_bits());
        assert!(sq_norm(&u) >= 0.0);
    }

    #[test]
    fn eval_prenorm_matches_kernel_eval_within_tolerance() {
        let mut rng = XorShift(13);
        for kernel in [
            Kernel::Linear,
            Kernel::Polynomial { degree: 2 },
            Kernel::Polynomial { degree: 3 },
            Kernel::Rbf { gamma: 0.7 },
        ] {
            for _ in 0..20 {
                let u = rng.row(53);
                let v = rng.row(53);
                let want = kernel.eval(&u, &v);
                let got = eval_prenorm(kernel, &u, sq_norm(&u), &v, sq_norm(&v));
                assert!(
                    (got - want).abs() <= 1e-12 * (1.0 + want.abs()),
                    "{kernel:?}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn rbf_self_similarity_is_exactly_one() {
        // ‖u‖² + ‖u‖² − 2·u·u cancels to 0 exactly (identical dot calls),
        // so k(u, u) = exp(0) = 1 — the clamp keeps -ε out.
        let mut rng = XorShift(17);
        let u = rng.row(31);
        let k = eval_prenorm(Kernel::Rbf { gamma: 2.0 }, &u, sq_norm(&u), &u, sq_norm(&u));
        assert_eq!(k, 1.0);
    }

    #[test]
    fn batch_is_bit_identical_to_per_row_across_panel_boundaries() {
        let mut rng = XorShift(23);
        // SV counts straddling the panel size: 1, a partial panel, one
        // full panel, full+partial, several panels.
        for n_sv in [1usize, 7, SV_PANEL, SV_PANEL + 5, 3 * SV_PANEL + 1] {
            let svs = DenseMatrix::from_rows(&(0..n_sv).map(|_| rng.row(11)).collect::<Vec<_>>());
            let alpha_y: Vec<f64> = (0..n_sv).map(|_| rng.f64()).collect();
            let sv_sq = sq_norms(&svs);
            let rows = DenseMatrix::from_rows(&(0..17).map(|_| rng.row(11)).collect::<Vec<_>>());
            for kernel in [
                Kernel::Linear,
                Kernel::Polynomial { degree: 2 },
                Kernel::Rbf { gamma: 0.3 },
            ] {
                let mut batch = Vec::new();
                decision_batch_into(kernel, &rows, &svs, &sv_sq, &alpha_y, 0.25, &mut batch);
                for (i, x) in rows.rows().enumerate() {
                    let want = decision(kernel, x, &svs, &sv_sq, &alpha_y, 0.25);
                    assert_eq!(
                        batch[i].to_bits(),
                        want.to_bits(),
                        "row {i}, n_sv {n_sv}, {kernel:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_row_fill_matches_pairwise_eval() {
        let mut rng = XorShift(29);
        let rows = DenseMatrix::from_rows(&(0..9).map(|_| rng.row(13)).collect::<Vec<_>>());
        let norms = sq_norms(&rows);
        let x = rng.row(13);
        let x_sq = sq_norm(&x);
        for kernel in [Kernel::Polynomial { degree: 2 }, Kernel::Rbf { gamma: 1.1 }] {
            let mut out = Vec::new();
            kernel_row_into(kernel, &x, x_sq, &rows, &norms, &mut out);
            assert_eq!(out.len(), rows.n_rows());
            for (j, r) in rows.rows().enumerate() {
                let want = eval_prenorm(kernel, &x, x_sq, r, norms[j]);
                assert_eq!(out[j].to_bits(), want.to_bits(), "row {j} {kernel:?}");
            }
        }
    }

    #[test]
    fn empty_sv_block_yields_bias() {
        let svs = DenseMatrix::<f64>::with_cols(4);
        let mut out = Vec::new();
        let rows = DenseMatrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0]]);
        decision_batch_into(Kernel::Linear, &rows, &svs, &[], &[], -0.5, &mut out);
        assert_eq!(out, vec![-0.5]);
        assert_eq!(
            decision(Kernel::Linear, rows.row(0), &svs, &[], &[], -0.5),
            -0.5
        );
    }
}
