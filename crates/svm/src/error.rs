//! Error type for SVM training and prediction.

use std::fmt;

/// Errors produced by SVM routines.
#[derive(Debug, Clone, PartialEq)]
pub enum SvmError {
    /// The training set is empty or labels/samples disagree in length.
    InvalidTrainingSet(String),
    /// Labels must be exactly `+1` or `-1` and both classes present.
    InvalidLabels(String),
    /// A configuration parameter is out of range.
    InvalidConfig(&'static str),
    /// The solver exhausted its iteration budget without satisfying the
    /// KKT conditions to tolerance. The partially-optimised model may
    /// still be usable; this error is returned instead to keep results
    /// reproducible.
    NotConverged {
        /// Iterations performed.
        iterations: usize,
    },
    /// Persisted model text is malformed or has an unsupported version.
    Persist(String),
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::InvalidTrainingSet(s) => write!(f, "invalid training set: {s}"),
            SvmError::InvalidLabels(s) => write!(f, "invalid labels: {s}"),
            SvmError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            SvmError::NotConverged { iterations } => {
                write!(f, "smo did not converge after {iterations} iterations")
            }
            SvmError::Persist(s) => write!(f, "persisted model problem: {s}"),
        }
    }
}

impl std::error::Error for SvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(SvmError::InvalidTrainingSet("empty".into())
            .to_string()
            .contains("empty"));
        assert!(SvmError::NotConverged { iterations: 5 }
            .to_string()
            .contains('5'));
        assert!(SvmError::InvalidConfig("c").to_string().contains('c'));
        assert!(SvmError::InvalidLabels("x".into())
            .to_string()
            .contains('x'));
        assert!(SvmError::Persist("bad header".into())
            .to_string()
            .contains("bad header"));
    }
}
