//! Cross-validation fold construction.

/// One train/test split expressed as row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of training rows.
    pub train: Vec<usize>,
    /// Indices of test rows.
    pub test: Vec<usize>,
}

/// Leave-one-group-out folds: one fold per distinct group value, testing
/// on that group. This is the paper's protocol with recording sessions as
/// groups (24 sessions → 24 folds).
pub fn leave_one_group_out(groups: &[usize]) -> Vec<Fold> {
    let mut distinct: Vec<usize> = Vec::new();
    for &g in groups {
        if !distinct.contains(&g) {
            distinct.push(g);
        }
    }
    distinct
        .into_iter()
        .map(|g| {
            let mut train = Vec::new();
            let mut test = Vec::new();
            for (i, &gi) in groups.iter().enumerate() {
                if gi == g {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            Fold { train, test }
        })
        .collect()
}

/// Deterministic `k`-fold split of `n` rows (contiguous blocks; shuffle
/// upstream if the row order is meaningful).
///
/// # Panics
///
/// Panics when `k == 0` or `k > n`.
pub fn k_fold(n: usize, k: usize) -> Vec<Fold> {
    assert!(k > 0 && k <= n, "need 0 < k <= n");
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        let test: Vec<usize> = (start..start + len).collect();
        let train: Vec<usize> = (0..n)
            .filter(|i| !(start..start + len).contains(i))
            .collect();
        folds.push(Fold { train, test });
        start += len;
    }
    folds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logo_one_fold_per_group() {
        let groups = [0, 0, 1, 2, 1, 2, 2];
        let folds = leave_one_group_out(&groups);
        assert_eq!(folds.len(), 3);
        // Each row appears in exactly one test fold.
        let mut seen = vec![0usize; groups.len()];
        for f in &folds {
            for &i in &f.test {
                seen[i] += 1;
            }
            // Train/test are disjoint and cover everything.
            assert_eq!(f.train.len() + f.test.len(), groups.len());
            for &i in &f.train {
                assert!(!f.test.contains(&i));
            }
            // All test rows share one group.
            let g = groups[f.test[0]];
            assert!(f.test.iter().all(|&i| groups[i] == g));
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_partitions_evenly() {
        let folds = k_fold(10, 3);
        assert_eq!(folds.len(), 3);
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let mut all: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "need 0 < k <= n")]
    fn kfold_validates() {
        let _ = k_fold(3, 5);
    }

    #[test]
    fn logo_single_group_gives_empty_train() {
        let folds = leave_one_group_out(&[7, 7]);
        assert_eq!(folds.len(), 1);
        assert!(folds[0].train.is_empty());
        assert_eq!(folds[0].test, vec![0, 1]);
    }
}
