//! Cross-validation fold construction.
//!
//! Both constructors build their folds in output-bound time: the work is
//! proportional to the total number of indices emitted, with no repeated
//! scans on top (the distinct-group pass of [`leave_one_group_out`] is
//! hashed, and [`k_fold`]'s train sets are two range extends instead of
//! a filtered full scan per fold).

use crate::error::SvmError;
use std::collections::HashMap;

/// One train/test split expressed as row indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fold {
    /// Indices of training rows.
    pub train: Vec<usize>,
    /// Indices of test rows.
    pub test: Vec<usize>,
}

/// Leave-one-group-out folds: one fold per distinct group value (in
/// first-seen order), testing on that group. This is the paper's
/// protocol with recording sessions as groups (24 sessions → 24 folds).
/// Both index lists of every fold are ascending.
pub fn leave_one_group_out(groups: &[usize]) -> Vec<Fold> {
    // Distinct groups in first-seen order, with their sizes — hashed in
    // one pass, so a cohort of many small groups no longer pays a
    // quadratic membership scan.
    let mut sizes: HashMap<usize, usize> = HashMap::new();
    let mut distinct: Vec<usize> = Vec::new();
    for &g in groups {
        let count = sizes.entry(g).or_insert(0);
        if *count == 0 {
            distinct.push(g);
        }
        *count += 1;
    }
    distinct
        .into_iter()
        .map(|g| {
            let n_test = sizes[&g];
            let mut train = Vec::with_capacity(groups.len() - n_test);
            let mut test = Vec::with_capacity(n_test);
            for (i, &gi) in groups.iter().enumerate() {
                if gi == g {
                    test.push(i);
                } else {
                    train.push(i);
                }
            }
            Fold { train, test }
        })
        .collect()
}

/// Deterministic `k`-fold split of `n` rows (contiguous blocks; shuffle
/// upstream if the row order is meaningful). Both index lists of every
/// fold are ascending.
///
/// # Errors
///
/// Returns [`SvmError::InvalidConfig`] when `k == 0` or `k > n` —
/// validated up front instead of panicking mid-evaluation.
pub fn k_fold(n: usize, k: usize) -> Result<Vec<Fold>, SvmError> {
    if k == 0 || k > n {
        return Err(SvmError::InvalidConfig(
            "k-fold split needs 0 < k <= n rows",
        ));
    }
    let base = n / k;
    let extra = n % k;
    let mut folds = Vec::with_capacity(k);
    let mut start = 0usize;
    for f in 0..k {
        let len = base + usize::from(f < extra);
        let test: Vec<usize> = (start..start + len).collect();
        // Train = everything outside the test block, as two range
        // extends (no per-index filtering).
        let mut train = Vec::with_capacity(n - len);
        train.extend(0..start);
        train.extend(start + len..n);
        folds.push(Fold { train, test });
        start += len;
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logo_one_fold_per_group() {
        let groups = [0, 0, 1, 2, 1, 2, 2];
        let folds = leave_one_group_out(&groups);
        assert_eq!(folds.len(), 3);
        // Each row appears in exactly one test fold.
        let mut seen = vec![0usize; groups.len()];
        for f in &folds {
            for &i in &f.test {
                seen[i] += 1;
            }
            // Train/test are disjoint and cover everything.
            assert_eq!(f.train.len() + f.test.len(), groups.len());
            for &i in &f.train {
                assert!(!f.test.contains(&i));
            }
            // All test rows share one group.
            let g = groups[f.test[0]];
            assert!(f.test.iter().all(|&i| groups[i] == g));
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_partitions_evenly() {
        let folds = k_fold(10, 3).unwrap();
        assert_eq!(folds.len(), 3);
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        let mut all: Vec<usize> = folds.iter().flat_map(|f| f.test.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn kfold_rejects_degenerate_configurations() {
        // k > n and k == 0 are errors, not panics.
        assert!(matches!(k_fold(3, 5), Err(SvmError::InvalidConfig(_))));
        assert!(matches!(k_fold(10, 0), Err(SvmError::InvalidConfig(_))));
        assert!(matches!(k_fold(0, 0), Err(SvmError::InvalidConfig(_))));
        assert!(matches!(k_fold(0, 1), Err(SvmError::InvalidConfig(_))));
        // Boundary cases are fine: k == n (leave-one-out) and k == 1.
        let loo = k_fold(4, 4).unwrap();
        assert_eq!(loo.len(), 4);
        assert!(loo.iter().all(|f| f.test.len() == 1));
        let one = k_fold(4, 1).unwrap();
        assert_eq!(one[0].test, vec![0, 1, 2, 3]);
        assert!(one[0].train.is_empty());
    }

    #[test]
    fn kfold_large_n_is_fast_and_exact() {
        // 100k rows, 7 folds: every index in exactly one test block,
        // train ascending and complementary. Output-bound construction —
        // this finishes instantly even under a debug build.
        let n = 100_000;
        let folds = k_fold(n, 7).unwrap();
        assert_eq!(folds.len(), 7);
        let mut covered = 0usize;
        for f in &folds {
            assert_eq!(f.train.len() + f.test.len(), n);
            assert!(f.test.windows(2).all(|w| w[0] + 1 == w[1]), "contiguous");
            assert!(f.train.windows(2).all(|w| w[0] < w[1]), "ascending");
            // Train skips exactly the test block.
            let (lo, hi) = (f.test[0], *f.test.last().unwrap());
            assert!(f.train.iter().all(|&i| i < lo || i > hi));
            covered += f.test.len();
        }
        assert_eq!(covered, n);
        // Uneven remainder spread: first n % k folds get one extra row.
        let sizes: Vec<usize> = folds.iter().map(|f| f.test.len()).collect();
        assert_eq!(sizes, vec![14286, 14286, 14286, 14286, 14286, 14285, 14285]);
    }

    #[test]
    fn logo_large_cohort_is_fast_and_exact() {
        // 60k rows across 24 interleaved groups (the paper's session
        // count at a large-cohort row count).
        let n = 60_000;
        let groups: Vec<usize> = (0..n).map(|i| i % 24).collect();
        let folds = leave_one_group_out(&groups);
        assert_eq!(folds.len(), 24);
        for (g, f) in folds.iter().enumerate() {
            assert_eq!(f.test.len(), n / 24);
            assert_eq!(f.train.len(), n - n / 24);
            assert!(f.test.iter().all(|&i| groups[i] == g));
            assert!(f.test.windows(2).all(|w| w[0] < w[1]), "ascending");
            assert!(f.train.windows(2).all(|w| w[0] < w[1]), "ascending");
        }
        // Many distinct groups (the case the old quadratic distinct scan
        // choked on): 5k groups of 2 rows.
        let groups: Vec<usize> = (0..10_000).map(|i| i / 2).collect();
        let folds = leave_one_group_out(&groups);
        assert_eq!(folds.len(), 5_000);
        assert!(folds.iter().all(|f| f.test.len() == 2));
    }

    #[test]
    fn logo_single_group_gives_empty_train() {
        let folds = leave_one_group_out(&[7, 7]);
        assert_eq!(folds.len(), 1);
        assert!(folds[0].train.is_empty());
        assert_eq!(folds[0].test, vec![0, 1]);
    }
}
