#![forbid(unsafe_code)]
//! # svm — from-scratch C-SVC support vector machine
//!
//! A dependency-free implementation of the soft-margin support vector
//! classifier used throughout the DATE 2019 reproduction:
//!
//! * [`kernel::Kernel`] — linear, polynomial `(x·y + 1)^d` (the paper's
//!   quadratic/cubic kernels) and Gaussian RBF;
//! * [`smo::SmoTrainer`] — Platt's Sequential Minimal Optimization with an
//!   error cache, per-class cost weighting (for the heavily imbalanced
//!   seizure/non-seizure problem) and a precomputed Gram matrix;
//! * [`model::SvmModel`] — the trained decision function
//!   `f(x) = Σ αᵢyᵢ k(x, xᵢ) + b` (Eq 1 of the paper), exposing support
//!   vectors and weights so the budgeting pass (Eq 5) can prune them;
//! * [`scale::Standardizer`] — per-feature standardisation fitted on
//!   training folds only;
//! * [`cv`] — fold construction (k-fold and leave-one-group-out).
//!
//! Training and inference run over the workspace-wide dense row-major
//! [`DenseMatrix`] container (re-exported from [`ecg_features`]): the
//! trainer consumes a dense sample block, the model stores its support
//! vectors contiguously, and the [`classifier::ClassifierEngine`] trait's
//! `predict_batch` / `decision_batch` stream whole batches without
//! per-row dispatch. Every inference backend in the workspace (the bare
//! [`SvmModel`], the float reference pipeline, the quantised engine)
//! implements [`ClassifierEngine`], so they are interchangeable behind
//! `dyn ClassifierEngine` — the seam the batch evaluators and the
//! streaming monitor are built on. Models persist to versioned plain
//! text ([`persist`]) with bit-exact round trips.
//!
//! ## Example
//!
//! ```
//! use svm::kernel::Kernel;
//! use svm::smo::{SmoConfig, SmoTrainer};
//! use svm::DenseMatrix;
//!
//! // Tiny XOR-like problem: not linearly separable, quadratic kernel is.
//! let x = DenseMatrix::from_rows(&[
//!     [0.0, 0.0], [1.0, 1.0], // class -1
//!     [0.0, 1.0], [1.0, 0.0], // class +1
//! ]);
//! let y = vec![-1.0, -1.0, 1.0, 1.0];
//! let cfg = SmoConfig { c: 10.0, kernel: Kernel::Polynomial { degree: 2 }, ..Default::default() };
//! let model = SmoTrainer::new(cfg).train(&x, &y)?;
//! assert_eq!(model.predict(&[0.9, 0.1]), 1.0);
//! assert_eq!(model.predict(&[0.9, 0.9]), -1.0);
//! // Batch inference over a contiguous block (trait method):
//! use svm::ClassifierEngine;
//! assert_eq!(model.classify_batch(&x), vec![-1.0, -1.0, 1.0, 1.0]);
//! # Ok::<(), svm::SvmError>(())
//! ```

pub mod classifier;
pub mod cv;
pub mod error;
pub mod kernel;
pub mod model;
pub mod persist;
pub mod scale;
pub mod smo;

pub use classifier::{class_of_decision, decision_is_seizure, ClassifierEngine, EngineInfo};
pub use ecg_features::DenseMatrix;
pub use error::SvmError;
pub use kernel::Kernel;
pub use model::SvmModel;
pub use smo::{SmoConfig, SmoTrainer};
