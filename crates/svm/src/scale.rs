//! Per-feature standardisation (z-scoring) fitted on training data only.

use ecg_features::DenseMatrix;

/// Column-wise standardiser: `x' = (x - mean) / std`.
///
/// Zero-variance columns pass through centred only, so constant features
/// cannot produce NaNs.
#[derive(Debug, Clone, PartialEq)]
pub struct Standardizer {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl Standardizer {
    /// Fits on a dense block of training rows.
    ///
    /// # Panics
    ///
    /// Panics on an empty training set.
    pub fn fit(rows: &DenseMatrix<f64>) -> Self {
        assert!(!rows.is_empty(), "cannot fit a standardizer on no rows");
        let d = rows.n_cols();
        let n = rows.n_rows() as f64;
        let mut means = vec![0.0; d];
        for r in rows.rows() {
            for (m, &v) in means.iter_mut().zip(r.iter()) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; d];
        for r in rows.rows() {
            for ((s, &v), &m) in stds.iter_mut().zip(r.iter()).zip(means.iter()) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
        }
        Standardizer { means, stds }
    }

    /// Number of columns this standardiser was fitted on.
    pub fn n_features(&self) -> usize {
        self.means.len()
    }

    /// Per-column means.
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations.
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Transforms one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the fitted width.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.means.len(), "row width mismatch");
        row.iter()
            .zip(self.means.iter().zip(self.stds.iter()))
            .map(|(&v, (&m, &s))| if s > 0.0 { (v - m) / s } else { v - m })
            .collect()
    }

    /// Transforms a dense block of rows into a new dense block.
    pub fn transform(&self, rows: &DenseMatrix<f64>) -> DenseMatrix<f64> {
        let mut out = DenseMatrix::with_cols(rows.n_cols());
        for r in rows.rows() {
            out.push_row(&self.transform_row(r));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standardises_to_zero_mean_unit_std() {
        let rows = DenseMatrix::from_rows(&[[1.0, 10.0], [2.0, 20.0], [3.0, 30.0], [4.0, 40.0]]);
        let s = Standardizer::fit(&rows);
        let t = s.transform(&rows);
        for j in 0..2 {
            let col: Vec<f64> = t.column(j);
            let m = col.iter().sum::<f64>() / col.len() as f64;
            let v = col.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / col.len() as f64;
            assert!(m.abs() < 1e-12);
            assert!((v - 1.0).abs() < 1e-12);
        }
        assert_eq!(s.n_features(), 2);
    }

    #[test]
    fn constant_column_is_centred_not_nan() {
        let rows = DenseMatrix::from_rows(&[[5.0, 1.0], [5.0, 2.0]]);
        let s = Standardizer::fit(&rows);
        let t = s.transform_row(&[5.0, 1.5]);
        assert_eq!(t[0], 0.0);
        assert!(t.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn transform_applies_train_statistics_to_test() {
        let train = DenseMatrix::from_rows(&[[0.0], [2.0]]);
        let s = Standardizer::fit(&train);
        // mean 1, std 1 → x' = x - 1
        assert_eq!(s.transform_row(&[4.0]), vec![3.0]);
        assert_eq!(s.means(), &[1.0]);
        assert_eq!(s.stds(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let s = Standardizer::fit(&DenseMatrix::from_rows(&[[1.0, 2.0]]));
        let _ = s.transform_row(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "no rows")]
    fn empty_fit_panics() {
        let _ = Standardizer::fit(&DenseMatrix::default());
    }
}
