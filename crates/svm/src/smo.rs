//! Platt's Sequential Minimal Optimization for the soft-margin C-SVC.
//!
//! Implements the classic two-heuristic working-set selection with a full
//! error cache. The Gram matrix is precomputed for problems that fit in
//! memory and falls back to an LRU row cache for larger ones.

use crate::error::SvmError;
use crate::kernel::{block, Kernel};
use crate::model::SvmModel;
use ecg_features::DenseMatrix;
use std::collections::VecDeque;

/// Trainer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmoConfig {
    /// Soft-margin cost. Larger values penalise violations harder.
    pub c: f64,
    /// Kernel function.
    pub kernel: Kernel,
    /// KKT violation tolerance (Platt's `tol`).
    pub tolerance: f64,
    /// Minimum α step considered progress.
    pub eps: f64,
    /// Maximum number of outer sweeps before giving up.
    pub max_sweeps: usize,
    /// When `true`, per-class costs are re-weighted inversely to class
    /// frequency (`c_k = c * n / (2 n_k)`), which the heavily imbalanced
    /// seizure problem needs to reach the paper's sensitivity levels.
    pub balance_classes: bool,
    /// Problem size above which the full Gram matrix is not precomputed.
    pub max_gram_rows: usize,
}

impl Default for SmoConfig {
    fn default() -> Self {
        SmoConfig {
            c: 1.0,
            kernel: Kernel::default(),
            tolerance: 1e-3,
            eps: 1e-12,
            max_sweeps: 4000,
            balance_classes: true,
            max_gram_rows: 8192,
        }
    }
}

/// Convergence diagnostics from one training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainStats {
    /// Outer sweeps executed.
    pub sweeps: usize,
    /// Successful α-pair updates.
    pub updates: usize,
    /// Whether KKT conditions were met within the sweep budget.
    pub converged: bool,
}

/// SMO trainer.
#[derive(Debug, Clone)]
pub struct SmoTrainer {
    cfg: SmoConfig,
}

/// Kernel value provider: full Gram or LRU row cache. Both fills go
/// through the float micro-kernel ([`block`]) — the same dot/kernel code
/// the inference paths run — with squared row norms precomputed once so
/// the RBF Gram costs one dot per entry.
enum Gram<'a> {
    Full(Vec<f64>, usize),
    Cached {
        x: &'a DenseMatrix<f64>,
        kernel: Kernel,
        row_sq: Vec<f64>,
        rows: VecDeque<(usize, Vec<f64>)>,
        cap: usize,
    },
}

impl<'a> Gram<'a> {
    fn new(x: &'a DenseMatrix<f64>, kernel: Kernel, max_rows: usize) -> Self {
        let n = x.n_rows();
        let row_sq: Vec<f64> = if block::uses_norms(kernel) {
            block::sq_norms(x)
        } else {
            vec![0.0; n]
        };
        if n <= max_rows {
            let mut g = vec![0.0f64; n * n];
            for i in 0..n {
                let xi = x.row(i);
                for j in 0..=i {
                    let v = block::eval_prenorm(kernel, xi, row_sq[i], x.row(j), row_sq[j]);
                    g[i * n + j] = v;
                    g[j * n + i] = v;
                }
            }
            Gram::Full(g, n)
        } else {
            Gram::Cached {
                x,
                kernel,
                row_sq,
                rows: VecDeque::new(),
                cap: 64,
            }
        }
    }

    /// Kernel row `i` applied at `j`.
    fn k(&mut self, i: usize, j: usize) -> f64 {
        match self {
            Gram::Full(g, n) => g[i * *n + j],
            Gram::Cached {
                x,
                kernel,
                row_sq,
                rows,
                cap,
            } => {
                if let Some(pos) = rows.iter().position(|(r, _)| *r == i) {
                    return rows[pos].1[j];
                }
                if let Some(pos) = rows.iter().position(|(r, _)| *r == j) {
                    return rows[pos].1[i];
                }
                let mut row = Vec::new();
                block::kernel_row_into(*kernel, x.row(i), row_sq[i], x, row_sq, &mut row);
                let v = row[j];
                rows.push_back((i, row));
                if rows.len() > *cap {
                    rows.pop_front();
                }
                v
            }
        }
    }
}

impl SmoTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(cfg: SmoConfig) -> Self {
        SmoTrainer { cfg }
    }

    /// Trains and returns only the model.
    ///
    /// # Errors
    ///
    /// See [`SmoTrainer::train_detailed`]; additionally maps a
    /// non-converged run to [`SvmError::NotConverged`] only if *no*
    /// progress at all was made (pathological inputs) — a model that met
    /// the sweep cap after making progress is still returned, because the
    /// partially-converged classifier is well-defined and reproducible.
    pub fn train(&self, x: &DenseMatrix<f64>, y: &[f64]) -> Result<SvmModel, SvmError> {
        let (model, stats) = self.train_detailed(x, y)?;
        if !stats.converged && stats.updates == 0 {
            return Err(SvmError::NotConverged {
                iterations: stats.sweeps,
            });
        }
        Ok(model)
    }

    /// Trains the SVM and returns the model plus convergence diagnostics.
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::InvalidTrainingSet`] for empty/ragged inputs,
    /// [`SvmError::InvalidLabels`] when labels are not ±1 with both
    /// classes present, and [`SvmError::InvalidConfig`] for bad
    /// hyper-parameters.
    pub fn train_detailed(
        &self,
        x: &DenseMatrix<f64>,
        y: &[f64],
    ) -> Result<(SvmModel, TrainStats), SvmError> {
        let (model, _alphas, stats) = self.train_with_alphas(x, y)?;
        Ok((model, stats))
    }

    /// Like [`SmoTrainer::train_detailed`] but also returns the α vector
    /// over the *whole training set* (zero for non-support vectors), which
    /// the SV-budgeting pass (paper Eq 5) needs to map support vectors
    /// back to training rows.
    ///
    /// # Errors
    ///
    /// Same as [`SmoTrainer::train_detailed`].
    pub fn train_with_alphas(
        &self,
        x: &DenseMatrix<f64>,
        y: &[f64],
    ) -> Result<(SvmModel, Vec<f64>, TrainStats), SvmError> {
        self.validate(x, y)?;
        let n = x.n_rows();
        let cfg = &self.cfg;

        // Per-sample cost.
        let n_pos = y.iter().filter(|&&v| v > 0.0).count();
        let n_neg = n - n_pos;
        let (w_pos, w_neg) = if cfg.balance_classes {
            (
                n as f64 / (2.0 * n_pos as f64),
                n as f64 / (2.0 * n_neg as f64),
            )
        } else {
            (1.0, 1.0)
        };
        let cost: Vec<f64> = y
            .iter()
            .map(|&yi| {
                if yi > 0.0 {
                    cfg.c * w_pos
                } else {
                    cfg.c * w_neg
                }
            })
            .collect();

        let mut gram = Gram::new(x, cfg.kernel, cfg.max_gram_rows);
        let mut alpha = vec![0.0f64; n];
        let mut b = 0.0f64;
        // Error cache: e_i = f(x_i) - y_i; with all alphas 0, f = b = 0.
        let mut err: Vec<f64> = y.iter().map(|&yi| -yi).collect();

        let mut sweeps = 0usize;
        let mut updates = 0usize;
        let mut examine_all = true;
        let mut converged = false;
        // Deterministic rotation for heuristic scans.
        let mut rot: usize = 1;

        while sweeps < cfg.max_sweeps {
            let mut changed = 0usize;
            let candidates: Vec<usize> = if examine_all {
                (0..n).collect()
            } else {
                (0..n)
                    .filter(|&i| alpha[i] > 0.0 && alpha[i] < cost[i])
                    .collect()
            };
            for &i2 in &candidates {
                changed += self.examine(
                    i2, x, y, &cost, &mut gram, &mut alpha, &mut err, &mut b, &mut rot,
                );
            }
            updates += changed;
            sweeps += 1;
            if examine_all {
                if changed == 0 {
                    converged = true;
                    break;
                }
                examine_all = false;
            } else if changed == 0 {
                examine_all = true;
            }
        }

        // Collect support vectors into one contiguous block.
        let mut svs = DenseMatrix::with_cols(x.n_cols());
        let mut a_out = Vec::new();
        let mut y_out = Vec::new();
        for i in 0..n {
            if alpha[i] > 1e-8 {
                svs.push_row(x.row(i));
                a_out.push(alpha[i]);
                y_out.push(y[i]);
            }
        }
        let model = SvmModel::from_parts(cfg.kernel, svs, a_out, y_out, b);
        Ok((
            model,
            alpha,
            TrainStats {
                sweeps,
                updates,
                converged,
            },
        ))
    }

    fn validate(&self, x: &DenseMatrix<f64>, y: &[f64]) -> Result<(), SvmError> {
        if x.is_empty() {
            return Err(SvmError::InvalidTrainingSet("no samples".into()));
        }
        if x.n_rows() != y.len() {
            return Err(SvmError::InvalidTrainingSet(format!(
                "{} samples but {} labels",
                x.n_rows(),
                y.len()
            )));
        }
        if x.n_cols() == 0 {
            return Err(SvmError::InvalidTrainingSet("zero-width rows".into()));
        }
        if y.iter().any(|&v| v != 1.0 && v != -1.0) {
            return Err(SvmError::InvalidLabels(
                "labels must be exactly +1 or -1".into(),
            ));
        }
        let n_pos = y.iter().filter(|&&v| v > 0.0).count();
        if n_pos == 0 || n_pos == y.len() {
            return Err(SvmError::InvalidLabels(
                "both classes must be present".into(),
            ));
        }
        if self.cfg.c <= 0.0 {
            return Err(SvmError::InvalidConfig("c must be positive"));
        }
        if self.cfg.tolerance <= 0.0 {
            return Err(SvmError::InvalidConfig("tolerance must be positive"));
        }
        if let Kernel::Rbf { gamma } = self.cfg.kernel {
            if gamma <= 0.0 {
                return Err(SvmError::InvalidConfig("rbf gamma must be positive"));
            }
        }
        Ok(())
    }

    /// Platt's `examineExample`: returns 1 when a pair was updated.
    #[allow(clippy::too_many_arguments)]
    fn examine(
        &self,
        i2: usize,
        x: &DenseMatrix<f64>,
        y: &[f64],
        cost: &[f64],
        gram: &mut Gram<'_>,
        alpha: &mut [f64],
        err: &mut [f64],
        b: &mut f64,
        rot: &mut usize,
    ) -> usize {
        let tol = self.cfg.tolerance;
        let y2 = y[i2];
        let a2 = alpha[i2];
        let e2 = err[i2];
        let r2 = e2 * y2;
        let n = x.n_rows();
        let violates = (r2 < -tol && a2 < cost[i2]) || (r2 > tol && a2 > 0.0);
        if !violates {
            return 0;
        }

        // Heuristic 1: maximise |E1 - E2| over non-bound multipliers.
        let mut best: Option<usize> = None;
        let mut best_gap = 0.0;
        for i in 0..n {
            if alpha[i] > 0.0 && alpha[i] < cost[i] {
                let gap = (err[i] - e2).abs();
                if gap > best_gap {
                    best_gap = gap;
                    best = Some(i);
                }
            }
        }
        if let Some(i1) = best {
            if self.take_step(i1, i2, y, cost, gram, alpha, err, b) {
                return 1;
            }
        }
        // Heuristic 2: all non-bound, starting at a rotating offset.
        *rot = rot.wrapping_mul(1664525).wrapping_add(1013904223);
        let start = *rot % n;
        for k in 0..n {
            let i1 = (start + k) % n;
            if alpha[i1] > 0.0
                && alpha[i1] < cost[i1]
                && self.take_step(i1, i2, y, cost, gram, alpha, err, b)
            {
                return 1;
            }
        }
        // Heuristic 3: the whole training set.
        for k in 0..n {
            let i1 = (start + k) % n;
            if self.take_step(i1, i2, y, cost, gram, alpha, err, b) {
                return 1;
            }
        }
        0
    }

    /// Joint optimisation of the pair `(i1, i2)`; returns `true` on
    /// progress.
    #[allow(clippy::too_many_arguments)]
    fn take_step(
        &self,
        i1: usize,
        i2: usize,
        y: &[f64],
        cost: &[f64],
        gram: &mut Gram<'_>,
        alpha: &mut [f64],
        err: &mut [f64],
        b: &mut f64,
    ) -> bool {
        if i1 == i2 {
            return false;
        }
        let (a1, a2) = (alpha[i1], alpha[i2]);
        let (y1, y2) = (y[i1], y[i2]);
        let (e1, e2) = (err[i1], err[i2]);
        let (c1, c2) = (cost[i1], cost[i2]);
        let s = y1 * y2;

        // Feasible segment.
        let (lo, hi) = if (y1 - y2).abs() > 0.5 {
            ((a2 - a1).max(0.0), (c1 + a2 - a1).min(c2))
        } else {
            ((a1 + a2 - c1).max(0.0), (a1 + a2).min(c2))
        };
        if hi - lo < 1e-12 {
            return false;
        }

        let k11 = gram.k(i1, i1);
        let k12 = gram.k(i1, i2);
        let k22 = gram.k(i2, i2);
        let eta = k11 + k22 - 2.0 * k12;

        let mut a2_new = if eta > 0.0 {
            (a2 + y2 * (e1 - e2) / eta).clamp(lo, hi)
        } else {
            // Degenerate curvature: evaluate the objective at both ends.
            let f1 = y1 * (e1 + *b) - a1 * k11 - s * a2 * k12;
            let f2 = y2 * (e2 + *b) - s * a1 * k12 - a2 * k22;
            let l1 = a1 + s * (a2 - lo);
            let h1 = a1 + s * (a2 - hi);
            let lobj =
                l1 * f1 + lo * f2 + 0.5 * l1 * l1 * k11 + 0.5 * lo * lo * k22 + s * lo * l1 * k12;
            let hobj =
                h1 * f1 + hi * f2 + 0.5 * h1 * h1 * k11 + 0.5 * hi * hi * k22 + s * hi * h1 * k12;
            if lobj < hobj - self.cfg.eps {
                lo
            } else if lobj > hobj + self.cfg.eps {
                hi
            } else {
                a2
            }
        };
        // Snap to the box to avoid lingering 1e-15 dust.
        if a2_new < 1e-10 {
            a2_new = 0.0;
        } else if a2_new > c2 - 1e-10 {
            a2_new = c2;
        }
        if (a2_new - a2).abs() < self.cfg.eps * (a2_new + a2 + self.cfg.eps) {
            return false;
        }
        let a1_new = a1 + s * (a2 - a2_new);
        let a1_new = a1_new.clamp(0.0, c1);

        // Threshold update (f(x) = Σ αyk + b convention).
        let b_old = *b;
        let b1 = b_old - e1 - y1 * (a1_new - a1) * k11 - y2 * (a2_new - a2) * k12;
        let b2 = b_old - e2 - y1 * (a1_new - a1) * k12 - y2 * (a2_new - a2) * k22;
        *b = if a1_new > 0.0 && a1_new < c1 {
            b1
        } else if a2_new > 0.0 && a2_new < c2 {
            b2
        } else {
            0.5 * (b1 + b2)
        };
        let db = *b - b_old;

        // Error cache update for every sample.
        let da1 = y1 * (a1_new - a1);
        let da2 = y2 * (a2_new - a2);
        for (j, e) in err.iter_mut().enumerate() {
            let k1j = gram.k(i1, j);
            let k2j = gram.k(i2, j);
            *e += da1 * k1j + da2 * k2j + db;
        }
        alpha[i1] = a1_new;
        alpha[i2] = a2_new;
        // Optimised points have (by definition) zero error w.r.t. the new
        // threshold when strictly inside the box; the incremental update
        // above already reflects that, so nothing more to fix.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm(rows: &[Vec<f64>]) -> DenseMatrix<f64> {
        DenseMatrix::from_rows(rows)
    }

    fn cfg(kernel: Kernel, c: f64) -> SmoConfig {
        SmoConfig {
            c,
            kernel,
            balance_classes: false,
            ..Default::default()
        }
    }

    #[test]
    fn two_point_problem_has_analytic_solution() {
        // Points at ±1 on a line: maximum margin boundary at 0,
        // alphas equal, |w| = 1 ⇒ alpha = 0.5 each for linear kernel.
        let x = vec![vec![1.0], vec![-1.0]];
        let y = vec![1.0, -1.0];
        let (model, stats) = SmoTrainer::new(cfg(Kernel::Linear, 10.0))
            .train_detailed(&dm(&x), &y)
            .unwrap();
        assert!(stats.converged);
        assert_eq!(model.n_support_vectors(), 2);
        for &a in model.alphas() {
            assert!((a - 0.5).abs() < 1e-6, "alpha {a}");
        }
        assert!(model.bias().abs() < 1e-6);
        assert_eq!(model.predict(&[0.7]), 1.0);
        assert_eq!(model.predict(&[-0.2]), -1.0);
    }

    #[test]
    fn linearly_separable_blobs() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.31;
            x.push(vec![2.0 + t.sin() * 0.3, 2.0 + t.cos() * 0.3]);
            y.push(1.0);
            x.push(vec![
                -2.0 + (t * 1.7).sin() * 0.3,
                -2.0 + (t * 1.3).cos() * 0.3,
            ]);
            y.push(-1.0);
        }
        let model = SmoTrainer::new(cfg(Kernel::Linear, 1.0))
            .train(&dm(&x), &y)
            .unwrap();
        let correct = x
            .iter()
            .zip(y.iter())
            .filter(|(xi, &yi)| model.predict(xi) == yi)
            .count();
        assert_eq!(correct, x.len());
        // Margin SVs only: far fewer than all points.
        assert!(model.n_support_vectors() < x.len() / 2);
    }

    #[test]
    fn xor_needs_quadratic_kernel() {
        let x = vec![
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
        ];
        let y = vec![-1.0, -1.0, 1.0, 1.0];
        let quad = SmoTrainer::new(cfg(Kernel::Polynomial { degree: 2 }, 100.0))
            .train(&dm(&x), &y)
            .unwrap();
        for (xi, &yi) in x.iter().zip(y.iter()) {
            assert_eq!(quad.predict(xi), yi, "at {xi:?}");
        }
        // The linear kernel cannot fit XOR: at least one training error.
        let lin = SmoTrainer::new(cfg(Kernel::Linear, 100.0))
            .train(&dm(&x), &y)
            .unwrap();
        let errors = x
            .iter()
            .zip(y.iter())
            .filter(|(xi, &yi)| lin.predict(xi) != yi)
            .count();
        assert!(errors >= 1, "linear kernel unexpectedly fit XOR");
    }

    #[test]
    fn rbf_fits_concentric_rings() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..24 {
            let t = i as f64 / 24.0 * std::f64::consts::TAU;
            x.push(vec![0.5 * t.cos(), 0.5 * t.sin()]);
            y.push(1.0);
            x.push(vec![2.0 * t.cos(), 2.0 * t.sin()]);
            y.push(-1.0);
        }
        let model = SmoTrainer::new(cfg(Kernel::Rbf { gamma: 1.0 }, 10.0))
            .train(&dm(&x), &y)
            .unwrap();
        let correct = x
            .iter()
            .zip(y.iter())
            .filter(|(xi, &yi)| model.predict(xi) == yi)
            .count();
        assert_eq!(correct, x.len());
        assert_eq!(model.predict(&[0.0, 0.0]), 1.0);
        assert_eq!(model.predict(&[3.0, 0.0]), -1.0);
    }

    #[test]
    fn class_weighting_shifts_boundary_toward_minority() {
        // 1 positive vs many negatives, overlapping: without weighting the
        // positive is sacrificed; with weighting it is not.
        let mut x = vec![vec![0.6]];
        let mut y = vec![1.0];
        for i in 0..30 {
            x.push(vec![-1.0 + 0.04 * i as f64]); // -1.0 .. 0.16
            y.push(-1.0);
        }
        let unweighted = SmoTrainer::new(SmoConfig {
            c: 0.05,
            kernel: Kernel::Linear,
            balance_classes: false,
            ..Default::default()
        })
        .train(&dm(&x), &y)
        .unwrap();
        let weighted = SmoTrainer::new(SmoConfig {
            c: 0.05,
            kernel: Kernel::Linear,
            balance_classes: true,
            ..Default::default()
        })
        .train(&dm(&x), &y)
        .unwrap();
        // The weighted decision value at the positive sample must be
        // strictly larger (pushed toward correct classification).
        assert!(
            weighted.decision_value(&[0.6]) > unweighted.decision_value(&[0.6]),
            "weighting had no effect"
        );
        assert_eq!(weighted.predict(&[0.6]), 1.0);
    }

    #[test]
    fn alphas_respect_box_constraints() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        // Overlapping classes force bound alphas.
        for i in 0..30 {
            let t = i as f64 * 0.37;
            x.push(vec![0.3 * t.sin() + 0.2]);
            y.push(1.0);
            x.push(vec![0.3 * (t * 0.9).cos() - 0.2]);
            y.push(-1.0);
        }
        let c = 2.0;
        let model = SmoTrainer::new(cfg(Kernel::Linear, c))
            .train(&dm(&x), &y)
            .unwrap();
        for &a in model.alphas() {
            assert!(a > 0.0 && a <= c + 1e-9, "alpha {a} outside (0, C]");
        }
    }

    #[test]
    fn dual_constraint_sum_alpha_y_is_zero() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            let t = i as f64;
            x.push(vec![(t * 0.7).sin(), (t * 0.3).cos()]);
            y.push(if i % 3 == 0 { 1.0 } else { -1.0 });
        }
        let model = SmoTrainer::new(cfg(Kernel::Polynomial { degree: 2 }, 5.0))
            .train(&dm(&x), &y)
            .unwrap();
        let s: f64 = model.alpha_y().iter().sum();
        assert!(s.abs() < 1e-6, "sum alpha*y = {s}");
    }

    #[test]
    fn kkt_conditions_hold_at_convergence() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..25 {
            let t = i as f64 * 0.41;
            x.push(vec![1.5 + t.sin(), 1.5 + (2.0 * t).cos()]);
            y.push(1.0);
            x.push(vec![-1.5 + (1.3 * t).sin(), -1.5 + t.cos()]);
            y.push(-1.0);
        }
        let c = 3.0;
        let trainer = SmoTrainer::new(cfg(Kernel::Linear, c));
        let (model, stats) = trainer.train_detailed(&dm(&x), &y).unwrap();
        assert!(stats.converged);
        // For margin SVs (0 < a < C): y f(x) ≈ 1.
        for (sv, (&a, &yv)) in model
            .support_vectors()
            .rows()
            .zip(model.alphas().iter().zip(model.labels().iter()))
        {
            if a > 1e-6 && a < c - 1e-6 {
                let m = yv * model.decision_value(sv);
                assert!((m - 1.0).abs() < 5e-2, "margin {m}");
            }
        }
        // Non-SV training points satisfy y f(x) >= 1 - tol.
        for (xi, &yi) in x.iter().zip(y.iter()) {
            let m = yi * model.decision_value(xi);
            assert!(m > 0.95, "margin violation {m}");
        }
    }

    #[test]
    fn validation_errors() {
        let t = SmoTrainer::new(SmoConfig::default());
        assert!(matches!(
            t.train(&DenseMatrix::default(), &[]),
            Err(SvmError::InvalidTrainingSet(_))
        ));
        assert!(matches!(
            t.train(&dm(&[vec![1.0]]), &[1.0, -1.0]),
            Err(SvmError::InvalidTrainingSet(_))
        ));
        // Zero-width rows (raggedness is unrepresentable in a DenseMatrix).
        assert!(matches!(
            t.train(&DenseMatrix::from_flat(vec![], 0), &[1.0, -1.0]),
            Err(SvmError::InvalidTrainingSet(_))
        ));
        assert!(matches!(
            t.train(&dm(&[vec![1.0], vec![2.0]]), &[1.0, 0.5]),
            Err(SvmError::InvalidLabels(_))
        ));
        assert!(matches!(
            t.train(&dm(&[vec![1.0], vec![2.0]]), &[1.0, 1.0]),
            Err(SvmError::InvalidLabels(_))
        ));
        let bad_c = SmoTrainer::new(SmoConfig {
            c: 0.0,
            ..Default::default()
        });
        assert!(matches!(
            bad_c.train(&dm(&[vec![1.0], vec![2.0]]), &[1.0, -1.0]),
            Err(SvmError::InvalidConfig(_))
        ));
        let bad_gamma = SmoTrainer::new(SmoConfig {
            kernel: Kernel::Rbf { gamma: -1.0 },
            ..Default::default()
        });
        assert!(matches!(
            bad_gamma.train(&dm(&[vec![1.0], vec![2.0]]), &[1.0, -1.0]),
            Err(SvmError::InvalidConfig(_))
        ));
    }

    #[test]
    fn training_is_deterministic() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..30 {
            let t = i as f64;
            x.push(vec![(t * 0.19).sin(), (t * 0.77).cos()]);
            y.push(if (t * 0.19).sin() + (t * 0.77).cos() > 0.0 {
                1.0
            } else {
                -1.0
            });
        }
        let t1 = SmoTrainer::new(cfg(Kernel::Polynomial { degree: 2 }, 2.0));
        let m1 = t1.train(&dm(&x), &y).unwrap();
        let m2 = t1.train(&dm(&x), &y).unwrap();
        assert_eq!(m1, m2);
    }

    #[test]
    fn lru_gram_fallback_matches_full() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..24 {
            let t = i as f64 * 0.53;
            x.push(vec![2.0 + t.sin(), 2.0 - t.cos()]);
            y.push(1.0);
            x.push(vec![-2.0 - t.sin(), -2.0 + t.cos()]);
            y.push(-1.0);
        }
        let full = SmoTrainer::new(cfg(Kernel::Linear, 1.0))
            .train(&dm(&x), &y)
            .unwrap();
        let lru = SmoTrainer::new(SmoConfig {
            max_gram_rows: 4, // force row-cache path
            ..cfg(Kernel::Linear, 1.0)
        })
        .train(&dm(&x), &y)
        .unwrap();
        for xi in &x {
            assert_eq!(full.predict(xi), lru.predict(xi));
        }
    }
}
