//! Plain-text, versioned model persistence.
//!
//! The format is line-oriented and self-describing so a persisted model
//! survives tooling without a serialisation dependency: a `svmmodel v1`
//! header, scalar fields as `key value` lines, then one `sv` line per
//! support vector. Every `f64` is written as its 16-hex-digit IEEE-754
//! bit pattern, so save → load round-trips **bit-exactly** — a streaming
//! monitor restarted from disk produces decisions bit-identical to the
//! process that trained the model.

use crate::error::SvmError;
use crate::kernel::Kernel;
use crate::model::SvmModel;
use ecg_features::DenseMatrix;

/// Format version written by [`SvmModel::to_text`].
pub const SVMMODEL_FORMAT_VERSION: u32 = 1;

/// Encodes an `f64` as its 16-hex-digit IEEE-754 bit pattern.
pub fn encode_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Decodes a 16-hex-digit IEEE-754 bit pattern back to the exact `f64`.
///
/// # Errors
///
/// Returns [`SvmError::Persist`] on malformed input.
pub fn decode_f64(s: &str) -> Result<f64, SvmError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| SvmError::Persist(format!("bad f64 hex field `{s}`")))
}

/// Parses a decimal integer field.
pub(crate) fn parse_usize(s: &str, what: &str) -> Result<usize, SvmError> {
    s.parse()
        .map_err(|_| SvmError::Persist(format!("bad {what} field `{s}`")))
}

fn kernel_to_text(k: Kernel) -> String {
    match k {
        Kernel::Linear => "linear".to_string(),
        Kernel::Polynomial { degree } => format!("polynomial {degree}"),
        Kernel::Rbf { gamma } => format!("rbf {}", encode_f64(gamma)),
    }
}

fn kernel_from_text(parts: &[&str]) -> Result<Kernel, SvmError> {
    match parts {
        ["linear"] => Ok(Kernel::Linear),
        ["polynomial", d] => Ok(Kernel::Polynomial {
            degree: d
                .parse()
                .map_err(|_| SvmError::Persist(format!("bad polynomial degree `{d}`")))?,
        }),
        ["rbf", g] => Ok(Kernel::Rbf {
            gamma: decode_f64(g)?,
        }),
        _ => Err(SvmError::Persist(format!(
            "unknown kernel spec `{}`",
            parts.join(" ")
        ))),
    }
}

impl SvmModel {
    /// Serialises the model as versioned plain text (bit-exact; see the
    /// module docs for the format).
    pub fn to_text(&self) -> String {
        let n_sv = self.n_support_vectors();
        let n_feat = self.n_features();
        let mut out = String::with_capacity(64 + n_sv * (n_feat + 2) * 17);
        out.push_str(&format!("svmmodel v{SVMMODEL_FORMAT_VERSION}\n"));
        out.push_str(&format!("kernel {}\n", kernel_to_text(self.kernel())));
        out.push_str(&format!("bias {}\n", encode_f64(self.bias())));
        out.push_str(&format!("n_sv {n_sv}\n"));
        out.push_str(&format!("n_feat {n_feat}\n"));
        for ((sv, &alpha), &label) in self
            .support_vectors()
            .rows()
            .zip(self.alphas().iter())
            .zip(self.labels().iter())
        {
            out.push_str("sv ");
            out.push_str(&encode_f64(alpha));
            out.push_str(if label > 0.0 { " +1" } else { " -1" });
            for &v in sv {
                out.push(' ');
                out.push_str(&encode_f64(v));
            }
            out.push('\n');
        }
        out
    }

    /// Parses a model previously written by [`SvmModel::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`SvmError::Persist`] on a wrong header/version, missing
    /// or malformed fields, or a support-vector count/width mismatch.
    pub fn from_text(text: &str) -> Result<SvmModel, SvmError> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| SvmError::Persist("empty model text".into()))?;
        if header.trim() != format!("svmmodel v{SVMMODEL_FORMAT_VERSION}") {
            return Err(SvmError::Persist(format!(
                "unsupported model header `{header}` (expected `svmmodel v{SVMMODEL_FORMAT_VERSION}`)"
            )));
        }
        let mut kernel = None;
        let mut bias = None;
        let mut n_sv = None;
        let mut n_feat = None;
        let mut svs: Option<DenseMatrix<f64>> = None;
        let mut alphas = Vec::new();
        let mut labels = Vec::new();
        for line in lines {
            let parts: Vec<&str> = line.split_whitespace().collect();
            match parts.as_slice() {
                ["kernel", rest @ ..] => kernel = Some(kernel_from_text(rest)?),
                ["bias", v] => bias = Some(decode_f64(v)?),
                ["n_sv", v] => n_sv = Some(parse_usize(v, "n_sv")?),
                ["n_feat", v] => {
                    if n_feat.is_some() {
                        return Err(SvmError::Persist("duplicate n_feat line".into()));
                    }
                    let d = parse_usize(v, "n_feat")?;
                    if d == 0 {
                        return Err(SvmError::Persist(
                            "n_feat must be >= 1 (a zero-width model cannot classify)".into(),
                        ));
                    }
                    n_feat = Some(d);
                    svs = Some(DenseMatrix::with_cols(d));
                }
                ["sv", alpha, label, feats @ ..] => {
                    let m = svs
                        .as_mut()
                        .ok_or_else(|| SvmError::Persist("sv line before n_feat".into()))?;
                    alphas.push(decode_f64(alpha)?);
                    labels.push(match *label {
                        "+1" => 1.0,
                        "-1" => -1.0,
                        other => {
                            return Err(SvmError::Persist(format!("bad sv label `{other}`")));
                        }
                    });
                    let row = feats
                        .iter()
                        .map(|f| decode_f64(f))
                        .collect::<Result<Vec<f64>, _>>()?;
                    if row.len() != m.n_cols() {
                        return Err(SvmError::Persist(format!(
                            "sv width {} does not match n_feat {}",
                            row.len(),
                            m.n_cols()
                        )));
                    }
                    m.push_row(&row);
                }
                // An `sv` line too short to carry alpha + label: its own
                // error (the catch-all below would blame the whole line).
                ["sv", ..] => {
                    return Err(SvmError::Persist(format!(
                        "truncated sv line `{line}` (need alpha, label and {} features)",
                        n_feat.map_or("n_feat".to_string(), |d| d.to_string())
                    )));
                }
                _ => {
                    return Err(SvmError::Persist(format!("unrecognised line `{line}`")));
                }
            }
        }
        let kernel = kernel.ok_or_else(|| SvmError::Persist("missing kernel".into()))?;
        let bias = bias.ok_or_else(|| SvmError::Persist("missing bias".into()))?;
        let svs = svs.ok_or_else(|| SvmError::Persist("missing n_feat".into()))?;
        debug_assert_eq!(svs.n_rows(), alphas.len());
        debug_assert_eq!(svs.n_rows(), labels.len());
        if let Some(expect) = n_sv {
            if svs.n_rows() != expect {
                return Err(SvmError::Persist(format!(
                    "n_sv says {expect} support vectors but {} sv lines found",
                    svs.n_rows()
                )));
            }
        }
        let declared = n_feat.ok_or_else(|| SvmError::Persist("missing n_feat".into()))?;
        debug_assert_eq!(svs.n_cols(), declared);
        Ok(SvmModel::from_parts(kernel, svs, alphas, labels, bias))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> SvmModel {
        SvmModel::from_parts(
            Kernel::Polynomial { degree: 2 },
            DenseMatrix::from_rows(&[vec![1.25, -0.3], vec![-0.75, 2.0e-17]]),
            vec![0.5, 0.125],
            vec![1.0, -1.0],
            -0.062_517_3,
        )
    }

    #[test]
    fn round_trip_is_bit_exact() {
        let m = toy_model();
        let text = m.to_text();
        let back = SvmModel::from_text(&text).unwrap();
        assert_eq!(m, back);
        for row in [[0.3, -1.7], [1e-300, 1e300], [0.0, -0.0]] {
            assert_eq!(
                m.decision_value(&row).to_bits(),
                back.decision_value(&row).to_bits()
            );
        }
        // Text survives a second round trip unchanged.
        assert_eq!(text, back.to_text());
    }

    #[test]
    fn all_kernels_round_trip() {
        for kernel in [
            Kernel::Linear,
            Kernel::Polynomial { degree: 3 },
            Kernel::Rbf { gamma: 0.173 },
        ] {
            let m = SvmModel::from_parts(
                kernel,
                DenseMatrix::from_rows(&[vec![1.0]]),
                vec![1.0],
                vec![1.0],
                0.0,
            );
            assert_eq!(SvmModel::from_text(&m.to_text()).unwrap(), m);
        }
    }

    #[test]
    fn f64_hex_round_trips_special_values() {
        for v in [0.0, -0.0, f64::MIN_POSITIVE, f64::MAX, -1.5e-300] {
            assert_eq!(decode_f64(&encode_f64(v)).unwrap().to_bits(), v.to_bits());
        }
        assert!(decode_f64("not-hex").is_err());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(SvmModel::from_text("").is_err());
        assert!(SvmModel::from_text("svmmodel v99\n").is_err());
        assert!(SvmModel::from_text("svmmodel v1\nkernel warp 9\n").is_err());
        let good = toy_model().to_text();
        // Wrong declared SV count.
        let bad = good.replace("n_sv 2", "n_sv 3");
        assert!(SvmModel::from_text(&bad).is_err());
        // Unknown line.
        let bad = format!("{good}gibberish\n");
        assert!(SvmModel::from_text(&bad).is_err());
        // sv line before the width is known.
        assert!(SvmModel::from_text("svmmodel v1\nsv 0 +1 0\n").is_err());
        // Repeated n_feat must be an error, not a panic: a second matrix
        // reset would desynchronise the SV block from alphas/labels.
        let z = encode_f64(0.0);
        let dup = format!(
            "svmmodel v1\nkernel linear\nbias {z}\nn_feat 1\nsv {z} +1 {z}\nn_feat 1\nsv {z} -1 {z}\n"
        );
        assert!(matches!(
            SvmModel::from_text(&dup),
            Err(SvmError::Persist(_))
        ));
    }

    /// Deterministic corpus of corrupted model texts: every entry must
    /// come back as `SvmError::Persist` — never a panic, never `Ok`.
    #[test]
    fn corrupted_corpus_never_panics() {
        let good = toy_model().to_text();
        let mut corpus: Vec<String> = vec![
            String::new(),
            "svmmodel".into(),
            "svmmodel v1".into(),             // header only: missing every field
            "svmmodel v2\n".into(),           // future version
            "not a model\n".into(),           // wrong header
            "svmmodel v1\nn_feat 0\n".into(), // zero-width model
            "svmmodel v1\nkernel linear\nbias zzzz\n".into(), // bad hex
            "svmmodel v1\nkernel polynomial x\n".into(), // bad degree
            "svmmodel v1\nkernel rbf\n".into(), // missing gamma
            "svmmodel v1\nn_sv -3\n".into(),  // negative count
            "svmmodel v1\nn_feat 18446744073709551616\n".into(), // > u64
            format!("{good}sv\n"),            // sv line with no fields
            format!("{good}sv {}\n", encode_f64(1.0)), // sv missing label
            good.replace(" +1 ", " up "),     // bad sv label token
            good.replace("n_feat 2", "n_feat 3"), // width mismatch
            good.replace("n_sv 2", "n_sv 1"), // count mismatch (too many)
            good.replace("n_sv 2", "n_sv 99"), // count mismatch (too few)
            good.replacen("bias", "bais", 1), // misspelt key
        ];
        // Truncations at every line boundary (all but the full text).
        let lines: Vec<&str> = good.lines().collect();
        for cut in 0..lines.len() {
            corpus.push(
                lines[..cut]
                    .iter()
                    .map(|l| format!("{l}\n"))
                    .collect::<String>(),
            );
        }
        // Drop one trailing field from each sv line in turn.
        for (i, line) in lines.iter().enumerate() {
            if line.starts_with("sv ") {
                let shortened = line.rsplit_once(' ').unwrap().0;
                let mut mutated = lines.clone();
                mutated[i] = shortened;
                corpus.push(mutated.iter().map(|l| format!("{l}\n")).collect());
            }
        }
        for (i, text) in corpus.iter().enumerate() {
            assert!(
                matches!(SvmModel::from_text(text), Err(SvmError::Persist(_))),
                "corpus entry {i} must be rejected:\n{text}"
            );
        }
        // The pristine text still parses, so the corpus mutations are the
        // only thing being rejected.
        assert!(SvmModel::from_text(&good).is_ok());
    }
}
