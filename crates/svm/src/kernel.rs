//! Kernel functions, plus the float micro-kernel layer ([`block`]) every
//! decision path computes them with.

pub mod block;

/// Kernel function `k(u, v)` defining the separating surface complexity
/// (Table I of the paper compares all four shapes on the seizure task).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// `k(u, v) = u·v`.
    Linear,
    /// `k(u, v) = (u·v + 1)^degree` — the paper's quadratic (`degree = 2`,
    /// Eq 3) and cubic (`degree = 3`) kernels.
    Polynomial {
        /// Polynomial degree (≥ 1).
        degree: u32,
    },
    /// `k(u, v) = exp(-gamma * ||u - v||^2)`.
    Rbf {
        /// Width parameter (> 0).
        gamma: f64,
    },
}

impl Default for Kernel {
    /// The paper's working choice: quadratic polynomial.
    fn default() -> Self {
        Kernel::Polynomial { degree: 2 }
    }
}

/// Dot product of two equal-length slices — the shared fixed-order
/// unrolled micro-kernel ([`block::dot4`]).
///
/// # Panics
///
/// Panics in debug builds when lengths differ.
#[inline]
pub fn dot(u: &[f64], v: &[f64]) -> f64 {
    debug_assert_eq!(u.len(), v.len());
    block::dot4(u, v)
}

impl Kernel {
    /// Evaluates the kernel.
    #[inline]
    pub fn eval(&self, u: &[f64], v: &[f64]) -> f64 {
        match *self {
            Kernel::Linear => dot(u, v),
            Kernel::Polynomial { degree } => (dot(u, v) + 1.0).powi(degree as i32),
            Kernel::Rbf { gamma } => {
                let d2: f64 = u.iter().zip(v.iter()).map(|(a, b)| (a - b) * (a - b)).sum();
                (-gamma * d2).exp()
            }
        }
    }

    /// Human-readable label used in experiment tables.
    pub fn label(&self) -> String {
        match *self {
            Kernel::Linear => "Linear".to_string(),
            Kernel::Polynomial { degree: 2 } => "Quadratic".to_string(),
            Kernel::Polynomial { degree: 3 } => "Cubic".to_string(),
            Kernel::Polynomial { degree } => format!("Poly(d={degree})"),
            Kernel::Rbf { .. } => "Gaussian".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_is_dot() {
        let u = [1.0, 2.0, 3.0];
        let v = [4.0, 5.0, 6.0];
        assert_eq!(Kernel::Linear.eval(&u, &v), 32.0);
    }

    #[test]
    fn quadratic_matches_eq3_form() {
        let u = [1.0, 2.0];
        let v = [3.0, -1.0];
        // (u·v + 1)^2 = (1 + 1)^2
        let k = Kernel::Polynomial { degree: 2 }.eval(&u, &v);
        assert_eq!(k, 4.0);
        let k3 = Kernel::Polynomial { degree: 3 }.eval(&u, &v);
        assert_eq!(k3, 8.0);
    }

    #[test]
    fn rbf_properties() {
        let k = Kernel::Rbf { gamma: 0.5 };
        let u = [1.0, 0.0];
        // k(x,x) = 1
        assert_eq!(k.eval(&u, &u), 1.0);
        // symmetric, decays with distance
        let v = [0.0, 1.0];
        let w = [3.0, 3.0];
        assert_eq!(k.eval(&u, &v), k.eval(&v, &u));
        assert!(k.eval(&u, &v) > k.eval(&u, &w));
        assert!(k.eval(&u, &v) > 0.0 && k.eval(&u, &v) < 1.0);
    }

    #[test]
    fn kernels_are_symmetric() {
        let u = [0.3, -1.2, 2.0];
        let v = [1.1, 0.4, -0.7];
        for k in [
            Kernel::Linear,
            Kernel::Polynomial { degree: 2 },
            Kernel::Polynomial { degree: 3 },
            Kernel::Rbf { gamma: 0.1 },
        ] {
            assert!((k.eval(&u, &v) - k.eval(&v, &u)).abs() < 1e-12);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Kernel::Linear.label(), "Linear");
        assert_eq!(Kernel::Polynomial { degree: 2 }.label(), "Quadratic");
        assert_eq!(Kernel::Polynomial { degree: 3 }.label(), "Cubic");
        assert_eq!(Kernel::Polynomial { degree: 5 }.label(), "Poly(d=5)");
        assert_eq!(Kernel::Rbf { gamma: 1.0 }.label(), "Gaussian");
        assert_eq!(Kernel::default(), Kernel::Polynomial { degree: 2 });
    }
}
