//! Trained SVM model: the decision function of Eq 1/3.

use crate::kernel::{block, Kernel};
use ecg_features::DenseMatrix;

/// A trained two-class SVM:
/// `f(x) = Σᵢ αᵢ yᵢ k(x, xᵢ) + b`, class = `sign(f(x))`.
///
/// Support vectors live in one contiguous row-major block
/// ([`DenseMatrix`]), which the batch decision paths stream over without
/// per-row indirection. Weights and labels are public (read-only through
/// accessors) because the paper's budgeting pass (Eq 5) needs them.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmModel {
    kernel: Kernel,
    support_vectors: DenseMatrix<f64>,
    /// α_i > 0 for every stored vector.
    alphas: Vec<f64>,
    /// y_i ∈ {-1, +1}.
    labels: Vec<f64>,
    bias: f64,
    /// Cached `αᵢyᵢ` products (the hot coefficients of the decision sum).
    alpha_y: Vec<f64>,
    /// Cached per-SV squared norms `‖xᵢ‖²`, feeding the micro-kernel's
    /// norm-form RBF evaluation (`‖u − v‖² = ‖u‖² + ‖v‖² − 2·u·v`).
    sv_sq_norms: Vec<f64>,
}

impl SvmModel {
    /// Assembles a model from parts (used by the trainer and by the
    /// budgeting re-trainer).
    ///
    /// # Panics
    ///
    /// Panics if the parts disagree in length or labels are not ±1.
    pub fn from_parts(
        kernel: Kernel,
        support_vectors: DenseMatrix<f64>,
        alphas: Vec<f64>,
        labels: Vec<f64>,
        bias: f64,
    ) -> Self {
        assert_eq!(
            support_vectors.n_rows(),
            alphas.len(),
            "sv/alpha length mismatch"
        );
        assert_eq!(
            support_vectors.n_rows(),
            labels.len(),
            "sv/label length mismatch"
        );
        assert!(
            labels.iter().all(|&y| y == 1.0 || y == -1.0),
            "labels must be exactly +1 or -1"
        );
        let alpha_y = alphas
            .iter()
            .zip(labels.iter())
            .map(|(&a, &y)| a * y)
            .collect();
        let sv_sq_norms = block::sq_norms(&support_vectors);
        SvmModel {
            kernel,
            support_vectors,
            alphas,
            labels,
            bias,
            alpha_y,
            sv_sq_norms,
        }
    }

    /// The kernel this model was trained with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// Number of support vectors (`N_SV` in the paper's cost model).
    pub fn n_support_vectors(&self) -> usize {
        self.support_vectors.n_rows()
    }

    /// Feature dimensionality (`N_feat`).
    pub fn n_features(&self) -> usize {
        self.support_vectors.n_cols()
    }

    /// Support vectors as a dense row-major block.
    pub fn support_vectors(&self) -> &DenseMatrix<f64> {
        &self.support_vectors
    }

    /// α weights (positive).
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Support-vector labels (±1).
    pub fn labels(&self) -> &[f64] {
        &self.labels
    }

    /// Bias term `b`.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// `αᵢyᵢ` products in SV order — the coefficients the paper quantises
    /// to `A_bits`.
    pub fn alpha_y(&self) -> &[f64] {
        &self.alpha_y
    }

    /// Decision value `f(x)` (distance-like score, positive ⇒ seizure),
    /// computed through the shared float micro-kernel
    /// ([`block::decision`]) — the same code path as the batch and
    /// streaming entry points, so all three stay mutually bit-identical.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        block::decision(
            self.kernel,
            x,
            &self.support_vectors,
            &self.sv_sq_norms,
            &self.alpha_y,
            self.bias,
        )
    }

    /// Cached per-SV squared norms (aligned with the SV block rows).
    pub fn sv_sq_norms(&self) -> &[f64] {
        &self.sv_sq_norms
    }

    /// Predicted class: `+1.0` or `-1.0` (ties break positive, matching
    /// the sign-bit convention of the hardware pipeline).
    ///
    /// Batch variants live on the [`crate::ClassifierEngine`] trait, which
    /// this model implements — bring the trait into scope for
    /// `decision_batch` / `predict_batch`-style whole-block inference.
    pub fn predict(&self, x: &[f64]) -> f64 {
        crate::classifier::class_of_decision(self.decision_value(x))
    }

    /// The paper's Eq 5 significance norm for each SV:
    /// `‖SVᵢ‖ = ‖αᵢ‖² × k(xᵢ, xᵢ)`.
    pub fn sv_norms(&self) -> Vec<f64> {
        self.support_vectors
            .rows()
            .zip(self.alphas.iter())
            .map(|(sv, &a)| a * a * self.kernel.eval(sv, sv))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_model() -> SvmModel {
        SvmModel::from_parts(
            Kernel::Linear,
            DenseMatrix::from_rows(&[vec![1.0, 0.0], vec![-1.0, 0.0]]),
            vec![0.5, 0.5],
            vec![1.0, -1.0],
            0.0,
        )
    }

    #[test]
    fn decision_function_matches_hand_computation() {
        let m = toy_model();
        // f(x) = 0.5*k(x,[1,0]) - 0.5*k(x,[-1,0]) = 0.5*x0 + 0.5*x0 = x0
        assert!((m.decision_value(&[2.0, 5.0]) - 2.0).abs() < 1e-12);
        assert_eq!(m.predict(&[0.3, -1.0]), 1.0);
        assert_eq!(m.predict(&[-0.3, 1.0]), -1.0);
        assert_eq!(m.predict(&[0.0, 0.0]), 1.0); // tie → +1
    }

    #[test]
    fn batch_paths_match_per_row() {
        use crate::classifier::ClassifierEngine;
        let m = toy_model();
        let batch = DenseMatrix::from_rows(&[
            vec![2.0, 5.0],
            vec![-0.3, 1.0],
            vec![0.0, 0.0],
            vec![0.3, -1.0],
        ]);
        let dec = m.decision_batch(&batch);
        let pred = m.classify_batch(&batch);
        for (i, row) in batch.rows().enumerate() {
            assert_eq!(dec[i].to_bits(), m.decision_value(row).to_bits());
            assert_eq!(pred[i], m.predict(row));
        }
    }

    #[test]
    fn accessors() {
        let m = toy_model();
        assert_eq!(m.n_support_vectors(), 2);
        assert_eq!(m.n_features(), 2);
        assert_eq!(m.alpha_y(), &[0.5, -0.5]);
        assert_eq!(m.bias(), 0.0);
        assert_eq!(m.kernel(), Kernel::Linear);
        assert_eq!(m.alphas(), &[0.5, 0.5]);
        assert_eq!(m.labels(), &[1.0, -1.0]);
        assert_eq!(m.support_vectors().n_rows(), 2);
    }

    #[test]
    fn eq5_norms() {
        let m = toy_model();
        // ||SV|| = a^2 * k(x,x) = 0.25 * 1.0
        let norms = m.sv_norms();
        assert!((norms[0] - 0.25).abs() < 1e-12);
        assert!((norms[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_validates_lengths() {
        let _ = SvmModel::from_parts(
            Kernel::Linear,
            DenseMatrix::from_rows(&[vec![1.0]]),
            vec![0.5, 0.5],
            vec![1.0],
            0.0,
        );
    }

    #[test]
    #[should_panic(expected = "labels must be exactly")]
    fn from_parts_validates_labels() {
        let _ = SvmModel::from_parts(
            Kernel::Linear,
            DenseMatrix::from_rows(&[vec![1.0]]),
            vec![0.5],
            vec![0.7],
            0.0,
        );
    }

    #[test]
    fn empty_model_predicts_bias_sign() {
        let m = SvmModel::from_parts(Kernel::Linear, DenseMatrix::default(), vec![], vec![], -0.5);
        assert_eq!(m.n_features(), 0);
        assert_eq!(m.predict(&[]), -1.0);
    }
}
