//! Property-based tests of SVM training invariants.

use proptest::prelude::*;
use svm::kernel::Kernel;
use svm::smo::{SmoConfig, SmoTrainer};

/// Builds a two-blob problem with controllable separation.
fn blobs(n_per_class: usize, separation: f64, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut state = seed.max(1);
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) - 0.5
    };
    let mut x = Vec::new();
    let mut y = Vec::new();
    for _ in 0..n_per_class {
        x.push(vec![separation / 2.0 + rnd(), rnd()]);
        y.push(1.0);
        x.push(vec![-separation / 2.0 + rnd(), rnd()]);
        y.push(-1.0);
    }
    (x, y)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The dual constraint Σ αᵢyᵢ = 0 holds at any solution, for any
    /// kernel and cost.
    #[test]
    fn dual_constraint_holds(seed in 1u64..500, c in 0.5f64..20.0, degree in 1u32..4) {
        let (x, y) = blobs(12, 1.5, seed);
        let cfg = SmoConfig {
            c,
            kernel: Kernel::Polynomial { degree },
            balance_classes: false,
            ..Default::default()
        };
        let model = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        let s: f64 = model.alpha_y().iter().sum();
        prop_assert!(s.abs() < 1e-5, "sum alpha*y = {}", s);
    }

    /// All α stay inside the box (0, C] and every stored vector has a
    /// strictly positive weight.
    #[test]
    fn alphas_respect_box(seed in 1u64..500, c in 0.2f64..8.0) {
        let (x, y) = blobs(10, 0.8, seed); // overlapping → bound SVs
        let cfg = SmoConfig { c, kernel: Kernel::Linear, balance_classes: false, ..Default::default() };
        let model = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        for &a in model.alphas() {
            prop_assert!(a > 0.0 && a <= c + 1e-9, "alpha {} outside (0, {}]", a, c);
        }
    }

    /// Well-separated blobs are classified perfectly regardless of seed.
    #[test]
    fn separable_problems_are_solved(seed in 1u64..500) {
        let (x, y) = blobs(10, 4.0, seed);
        let cfg = SmoConfig { c: 10.0, kernel: Kernel::Linear, balance_classes: false, ..Default::default() };
        let model = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        for (xi, &yi) in x.iter().zip(y.iter()) {
            prop_assert_eq!(model.predict(xi), yi);
        }
    }

    /// Training is invariant to sample order (the solution, and hence
    /// every prediction, matches after a rotation of the training set).
    #[test]
    fn order_invariant_predictions(seed in 1u64..200, rot in 1usize..19) {
        let (x, y) = blobs(10, 2.0, seed);
        let cfg = SmoConfig { c: 5.0, kernel: Kernel::Polynomial { degree: 2 }, balance_classes: false, ..Default::default() };
        let m1 = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        let n = x.len();
        let xr: Vec<Vec<f64>> = (0..n).map(|i| x[(i + rot) % n].clone()).collect();
        let yr: Vec<f64> = (0..n).map(|i| y[(i + rot) % n]).collect();
        let m2 = SmoTrainer::new(cfg).train(&xr, &yr).unwrap();
        for xi in &x {
            prop_assert_eq!(m1.predict(xi), m2.predict(xi), "at {:?}", xi);
        }
    }

    /// Predictions are invariant under duplication of the training set
    /// (the optimum scales but the boundary does not move much); weak
    /// form: training accuracy is preserved.
    #[test]
    fn duplication_preserves_training_accuracy(seed in 1u64..200) {
        let (x, y) = blobs(8, 2.5, seed);
        let cfg = SmoConfig { c: 5.0, kernel: Kernel::Linear, balance_classes: false, ..Default::default() };
        let m1 = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        let mut x2 = x.clone();
        x2.extend(x.iter().cloned());
        let mut y2 = y.clone();
        y2.extend(y.iter().cloned());
        let m2 = SmoTrainer::new(cfg).train(&x2, &y2).unwrap();
        let acc = |m: &svm::SvmModel| {
            x.iter().zip(y.iter()).filter(|(xi, &yi)| m.predict(xi) == yi).count()
        };
        prop_assert_eq!(acc(&m1), acc(&m2));
    }

    /// Kernel symmetry holds for random vectors (Mercer sanity).
    #[test]
    fn kernel_symmetry(u in proptest::collection::vec(-10.0f64..10.0, 5),
                       v in proptest::collection::vec(-10.0f64..10.0, 5),
                       gamma in 0.01f64..2.0,
                       degree in 1u32..5) {
        for k in [Kernel::Linear, Kernel::Polynomial { degree }, Kernel::Rbf { gamma }] {
            prop_assert!((k.eval(&u, &v) - k.eval(&v, &u)).abs() < 1e-10);
        }
        // RBF is a similarity: maximal on the diagonal.
        let rbf = Kernel::Rbf { gamma };
        prop_assert!(rbf.eval(&u, &u) >= rbf.eval(&u, &v) - 1e-12);
    }

    /// Margin support vectors (0 < α < C) sit at unit functional margin.
    #[test]
    fn margin_svs_have_unit_margin(seed in 1u64..200) {
        let (x, y) = blobs(12, 2.0, seed);
        let c = 50.0;
        let cfg = SmoConfig { c, kernel: Kernel::Linear, balance_classes: false, ..Default::default() };
        let model = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        for (sv, (&a, &yv)) in model
            .support_vectors()
            .iter()
            .zip(model.alphas().iter().zip(model.labels().iter()))
        {
            if a > 1e-6 && a < c - 1e-6 {
                let m = yv * model.decision_value(sv);
                prop_assert!((m - 1.0).abs() < 0.05, "margin {}", m);
            }
        }
    }
}
