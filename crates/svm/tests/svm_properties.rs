//! Property-based tests of SVM training invariants.
//!
//! The offline build has no `proptest`, so each property runs over a
//! deterministic seed sweep — same invariants, reproducible cases.

use ecg_features::DenseMatrix;
use svm::kernel::Kernel;
use svm::smo::{SmoConfig, SmoTrainer};
use svm::ClassifierEngine;

/// Builds a two-blob problem with controllable separation.
fn blobs(n_per_class: usize, separation: f64, seed: u64) -> (DenseMatrix<f64>, Vec<f64>) {
    let mut state = seed.max(1);
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) - 0.5
    };
    let mut x = DenseMatrix::with_cols(2);
    let mut y = Vec::new();
    for _ in 0..n_per_class {
        x.push_row(&[separation / 2.0 + rnd(), rnd()]);
        y.push(1.0);
        x.push_row(&[-separation / 2.0 + rnd(), rnd()]);
        y.push(-1.0);
    }
    (x, y)
}

/// Deterministic parameter sweep: 16 cases per property, like the old
/// `ProptestConfig::with_cases(16)`.
fn seeds() -> impl Iterator<Item = u64> {
    (0..16u64).map(|i| 1 + i * 31)
}

/// The dual constraint Σ αᵢyᵢ = 0 holds at any solution, for any kernel
/// and cost.
#[test]
fn dual_constraint_holds() {
    for seed in seeds() {
        let c = 0.5 + (seed % 20) as f64;
        let degree = 1 + (seed % 3) as u32;
        let (x, y) = blobs(12, 1.5, seed);
        let cfg = SmoConfig {
            c,
            kernel: Kernel::Polynomial { degree },
            balance_classes: false,
            ..Default::default()
        };
        let model = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        let s: f64 = model.alpha_y().iter().sum();
        assert!(s.abs() < 1e-5, "sum alpha*y = {s} (seed {seed})");
    }
}

/// All α stay inside the box (0, C] and every stored vector has a
/// strictly positive weight.
#[test]
fn alphas_respect_box() {
    for seed in seeds() {
        let c = 0.2 + (seed % 8) as f64;
        let (x, y) = blobs(10, 0.8, seed); // overlapping → bound SVs
        let cfg = SmoConfig {
            c,
            kernel: Kernel::Linear,
            balance_classes: false,
            ..Default::default()
        };
        let model = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        for &a in model.alphas() {
            assert!(
                a > 0.0 && a <= c + 1e-9,
                "alpha {a} outside (0, {c}] (seed {seed})"
            );
        }
    }
}

/// Well-separated blobs are classified perfectly regardless of seed.
#[test]
fn separable_problems_are_solved() {
    for seed in seeds() {
        let (x, y) = blobs(10, 4.0, seed);
        let cfg = SmoConfig {
            c: 10.0,
            kernel: Kernel::Linear,
            balance_classes: false,
            ..Default::default()
        };
        let model = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        // Batch and per-row predictions must agree and be perfect.
        let batch = model.classify_batch(&x);
        for ((xi, &yi), &pi) in x.rows().zip(y.iter()).zip(batch.iter()) {
            assert_eq!(model.predict(xi), yi, "seed {seed}");
            assert_eq!(pi, yi, "batch mismatch at seed {seed}");
        }
    }
}

/// Training is invariant to sample order (the solution, and hence every
/// prediction, matches after a rotation of the training set).
#[test]
fn order_invariant_predictions() {
    for seed in seeds() {
        let rot = 1 + (seed as usize % 18);
        let (x, y) = blobs(10, 2.0, seed);
        let cfg = SmoConfig {
            c: 5.0,
            kernel: Kernel::Polynomial { degree: 2 },
            balance_classes: false,
            ..Default::default()
        };
        let m1 = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        let n = x.n_rows();
        let mut xr = DenseMatrix::with_cols(2);
        let mut yr = Vec::with_capacity(n);
        for i in 0..n {
            xr.push_row(x.row((i + rot) % n));
            yr.push(y[(i + rot) % n]);
        }
        let m2 = SmoTrainer::new(cfg).train(&xr, &yr).unwrap();
        for xi in x.rows() {
            assert_eq!(m1.predict(xi), m2.predict(xi), "at {xi:?} (seed {seed})");
        }
    }
}

/// Predictions are invariant under duplication of the training set (the
/// optimum scales but the boundary does not move much); weak form:
/// training accuracy is preserved.
#[test]
fn duplication_preserves_training_accuracy() {
    for seed in seeds() {
        let (x, y) = blobs(8, 2.5, seed);
        let cfg = SmoConfig {
            c: 5.0,
            kernel: Kernel::Linear,
            balance_classes: false,
            ..Default::default()
        };
        let m1 = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        let mut x2 = x.clone();
        for row in x.rows() {
            x2.push_row(row);
        }
        let mut y2 = y.clone();
        y2.extend(y.iter().copied());
        let m2 = SmoTrainer::new(cfg).train(&x2, &y2).unwrap();
        let acc = |m: &svm::SvmModel| {
            m.classify_batch(&x)
                .iter()
                .zip(y.iter())
                .filter(|(&p, &yi)| p == yi)
                .count()
        };
        assert_eq!(acc(&m1), acc(&m2), "seed {seed}");
    }
}

/// Kernel symmetry holds for random vectors (Mercer sanity).
#[test]
fn kernel_symmetry() {
    let mut state = 9u64;
    let mut rnd = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) * 20.0 - 10.0
    };
    for case in 0..16 {
        let u: Vec<f64> = (0..5).map(|_| rnd()).collect();
        let v: Vec<f64> = (0..5).map(|_| rnd()).collect();
        let gamma = 0.01 + 0.1 * case as f64;
        let degree = 1 + case % 4;
        for k in [
            Kernel::Linear,
            Kernel::Polynomial { degree },
            Kernel::Rbf { gamma },
        ] {
            assert!((k.eval(&u, &v) - k.eval(&v, &u)).abs() < 1e-10);
        }
        // RBF is a similarity: maximal on the diagonal.
        let rbf = Kernel::Rbf { gamma };
        assert!(rbf.eval(&u, &u) >= rbf.eval(&u, &v) - 1e-12);
    }
}

/// Margin support vectors (0 < α < C) sit at unit functional margin.
#[test]
fn margin_svs_have_unit_margin() {
    for seed in seeds() {
        let (x, y) = blobs(12, 2.0, seed);
        let c = 50.0;
        let cfg = SmoConfig {
            c,
            kernel: Kernel::Linear,
            balance_classes: false,
            ..Default::default()
        };
        let model = SmoTrainer::new(cfg).train(&x, &y).unwrap();
        for (sv, (&a, &yv)) in model
            .support_vectors()
            .rows()
            .zip(model.alphas().iter().zip(model.labels().iter()))
        {
            if a > 1e-6 && a < c - 1e-6 {
                let m = yv * model.decision_value(sv);
                assert!((m - 1.0).abs() < 0.05, "margin {m} (seed {seed})");
            }
        }
        let _ = y;
    }
}
