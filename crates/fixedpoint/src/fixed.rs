//! Width-tracked integer helpers for the bit-accurate pipeline.
//!
//! The hardware accelerator of Fig 2 works on two's-complement integers of
//! explicit widths; these helpers emulate exactly the operations the RTL
//! would perform: arithmetic right shift (LSB truncation after the dot
//! product and the squarer) and saturation to a width.

/// Arithmetic right shift by `k` bits — the "discard the least significant
/// bits" operation of Section III, rounding toward negative infinity as
/// hardware truncation does.
pub fn truncate_lsbs(v: i128, k: u32) -> i128 {
    if k == 0 {
        return v;
    }
    if k >= 127 {
        return if v < 0 { -1 } else { 0 };
    }
    v >> k
}

/// Narrow twin of [`truncate_lsbs`] for the i64 fast datapath: identical
/// semantics (arithmetic shift, floor rounding) on 64-bit accumulators.
pub fn truncate_lsbs_i64(v: i64, k: u32) -> i64 {
    if k == 0 {
        return v;
    }
    if k >= 63 {
        return if v < 0 { -1 } else { 0 };
    }
    v >> k
}

/// Saturates `v` into a signed `bits`-wide two's-complement range.
///
/// # Panics
///
/// Panics unless `1 <= bits <= 127`.
pub fn saturate_to_width(v: i128, bits: u32) -> i128 {
    assert!((1..=127).contains(&bits), "width must be 1..=127");
    let max = (1i128 << (bits - 1)) - 1;
    let min = -(1i128 << (bits - 1));
    v.clamp(min, max)
}

/// Minimum signed width (bits, including sign) needed to represent `v`.
pub fn width_of(v: i128) -> u32 {
    if v == 0 {
        return 1;
    }
    if v > 0 {
        128 - v.leading_zeros() + 1
    } else {
        // -2^k needs k+1 bits; other negatives need the same as |v|-ish.
        128 - (-(v + 1)).leading_zeros() + 1
    }
}

/// Width of the product of two signed operands of widths `a` and `b`.
pub fn product_width(a: u32, b: u32) -> u32 {
    a + b
}

/// Width growth of accumulating `n` terms of width `w`:
/// `w + ceil(log2(n))` guard bits.
pub fn accumulator_width(w: u32, n: usize) -> u32 {
    if n <= 1 {
        return w;
    }
    w + (usize::BITS - (n - 1).leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncation_matches_floor_division() {
        assert_eq!(truncate_lsbs(1023, 10), 0);
        assert_eq!(truncate_lsbs(1024, 10), 1);
        assert_eq!(truncate_lsbs(-1, 10), -1); // floor, not toward zero
        assert_eq!(truncate_lsbs(-1024, 10), -1);
        assert_eq!(truncate_lsbs(-1025, 10), -2);
        assert_eq!(truncate_lsbs(12345, 0), 12345);
        assert_eq!(truncate_lsbs(5, 127), 0);
        assert_eq!(truncate_lsbs(-5, 127), -1);
    }

    #[test]
    fn i64_truncation_matches_wide_truncation() {
        for v in [
            0i64,
            1,
            -1,
            1023,
            1024,
            -1024,
            -1025,
            12345,
            i64::MAX,
            i64::MIN,
        ] {
            for k in [0u32, 1, 10, 62, 63, 64, 127] {
                assert_eq!(
                    truncate_lsbs_i64(v, k) as i128,
                    truncate_lsbs(v as i128, k),
                    "v={v} k={k}"
                );
            }
        }
    }

    #[test]
    fn saturation_bounds() {
        assert_eq!(saturate_to_width(300, 8), 127);
        assert_eq!(saturate_to_width(-300, 8), -128);
        assert_eq!(saturate_to_width(100, 8), 100);
        assert_eq!(saturate_to_width(i128::MAX, 64), (1i128 << 63) - 1);
    }

    #[test]
    #[should_panic(expected = "width must be")]
    fn saturation_validates_width() {
        let _ = saturate_to_width(0, 0);
    }

    #[test]
    fn width_of_known_values() {
        assert_eq!(width_of(0), 1);
        assert_eq!(width_of(1), 2);
        assert_eq!(width_of(-1), 1);
        assert_eq!(width_of(127), 8);
        assert_eq!(width_of(128), 9);
        assert_eq!(width_of(-128), 8);
        assert_eq!(width_of(-129), 9);
    }

    #[test]
    fn width_arithmetic() {
        assert_eq!(product_width(9, 9), 18);
        assert_eq!(accumulator_width(18, 1), 18);
        assert_eq!(accumulator_width(18, 2), 19);
        assert_eq!(accumulator_width(18, 53), 24);
        // 53 terms -> ceil(log2(53)) = 6 guard bits.
    }

    #[test]
    fn widths_are_sufficient() {
        // Any product of two w-bit values fits in product_width bits.
        for a in [-128i128, -1, 0, 127] {
            for b in [-128i128, -1, 0, 127] {
                let p = a * b;
                assert!(width_of(p) <= product_width(8, 8));
            }
        }
    }
}
