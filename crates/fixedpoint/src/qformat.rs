//! Power-of-two range selection (Eq 6 of the paper).

/// Returns the smallest exponent `R` such that
/// `avg(values) - σ(values) > -2^R` and `avg(values) + σ(values) < 2^R`
/// (Eq 6). The returned range `[-2^R, 2^R)` can be applied with shifts
/// instead of dividers in hardware.
///
/// `R` may be negative for sub-unit features. Degenerate inputs (empty or
/// all-zero) return `R = 0` (range `[-1, 1)`).
pub fn pow2_range_exponent(values: &[f64]) -> i32 {
    if values.is_empty() {
        return 0;
    }
    let n = values.len() as f64;
    let avg = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>() / n;
    let sigma = var.sqrt();
    let lo = avg - sigma;
    let hi = avg + sigma;
    if !lo.is_finite() || !hi.is_finite() {
        return 0;
    }
    for r in -32..=62i32 {
        let bound = (r as f64).exp2();
        if lo > -bound && hi < bound {
            return r;
        }
    }
    62
}

/// Saturates `x` into the power-of-two range `[-2^R, 2^R)` ("if a feature
/// value exceeds its range, it is saturated to the admissible maximum /
/// minimum").
pub fn saturate_to_range(x: f64, r: i32) -> f64 {
    let bound = (r as f64).exp2();
    // The admissible maximum is one LSB below the bound; using the open
    // bound here and letting the quantiser clamp the integer code keeps
    // this function width-agnostic.
    x.clamp(-bound, bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scale_features() {
        // avg 0, σ ≈ 0.8 → R = 0 (range [-1, 1)).
        let v = [0.8, -0.8, 0.79, -0.81];
        assert_eq!(pow2_range_exponent(&v), 0);
    }

    #[test]
    fn large_scale_features() {
        // HR in bpm: avg 75, σ 10 → need 2^7 = 128.
        let v = [65.0, 75.0, 85.0, 75.0];
        let r = pow2_range_exponent(&v);
        assert_eq!(r, 7);
    }

    #[test]
    fn sub_unit_features() {
        // RR std in seconds: ~0.05 → 2^-4 = 0.0625 covers avg+σ.
        let v = [0.05, 0.04, 0.06, 0.05];
        let r = pow2_range_exponent(&v);
        assert!(r <= -3, "r = {r}");
        let bound = (r as f64).exp2();
        let avg = 0.05;
        assert!(avg < bound);
    }

    #[test]
    fn eq6_inequalities_hold_and_are_tight() {
        let v = [3.0, -1.0, 2.5, 0.5, 1.0, 2.0];
        let r = pow2_range_exponent(&v);
        let n = v.len() as f64;
        let avg = v.iter().sum::<f64>() / n;
        let sigma = (v.iter().map(|x| (x - avg) * (x - avg)).sum::<f64>() / n).sqrt();
        let bound = (r as f64).exp2();
        assert!(avg - sigma > -bound);
        assert!(avg + sigma < bound);
        // Tight: the next smaller power of two fails at least one side.
        let smaller = ((r - 1) as f64).exp2();
        assert!(avg - sigma <= -smaller || avg + sigma >= smaller);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(pow2_range_exponent(&[]), 0);
        assert_eq!(pow2_range_exponent(&[0.0, 0.0]), -32);
        assert_eq!(pow2_range_exponent(&[f64::NAN]), 0);
    }

    #[test]
    fn saturation_clamps_symmetrically() {
        assert_eq!(saturate_to_range(10.0, 2), 4.0);
        assert_eq!(saturate_to_range(-10.0, 2), -4.0);
        assert_eq!(saturate_to_range(1.5, 2), 1.5);
        assert_eq!(saturate_to_range(0.3, -1), 0.3);
        assert_eq!(saturate_to_range(0.9, -1), 0.5);
    }
}
