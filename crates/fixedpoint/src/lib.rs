#![forbid(unsafe_code)]
//! # fixedpoint — quantisation substrate for the tailored inference engine
//!
//! Implements the paper's Section III "Reducing bitwidths" machinery:
//!
//! * [`qformat::pow2_range_exponent`] — Eq 6: the smallest power-of-two
//!   range `[-2^R, 2^R)` containing `avg ± σ` of a feature over the SV
//!   set, so scaling is a shift rather than a division in hardware;
//! * [`quantize::Quantizer`] — saturating round-to-nearest encoding into a
//!   signed `bits`-wide integer with an explicit LSB exponent;
//! * [`quantize::FeatureScales`] — the per-feature scale memory of the
//!   accelerator (one `R_j` per feature);
//! * [`fixed`] — width-tracked helpers used by the bit-accurate pipeline
//!   (arithmetic LSB truncation, saturation to a width, width bookkeeping).
//!
//! ## Example
//!
//! ```
//! use fixedpoint::quantize::Quantizer;
//!
//! // 9 feature bits over the range [-2, 2): LSB = 2^(1-8) = 2^-7.
//! let q = Quantizer::for_range_exponent(1, 9);
//! let code = q.encode(0.5);
//! assert!((q.decode(code) - 0.5).abs() <= q.lsb() / 2.0);
//! ```

pub mod fixed;
pub mod qformat;
pub mod quantize;

pub use qformat::pow2_range_exponent;
pub use quantize::{FeatureScales, Quantizer};
