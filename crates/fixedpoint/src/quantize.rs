//! Saturating quantisers and the per-feature scale memory.

use crate::qformat::pow2_range_exponent;

/// Round-to-nearest, saturating quantiser into a signed two's-complement
/// code of `bits` bits with LSB weight `2^lsb_exp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Quantizer {
    /// LSB exponent: a code `q` represents `q * 2^lsb_exp`.
    pub lsb_exp: i32,
    /// Total signed width in bits (including sign), `2 ..= 63`.
    pub bits: u32,
}

impl Quantizer {
    /// Quantiser for a feature with power-of-two range exponent `r`
    /// represented on `bits` bits: the MSB weighs `2^(r-1)` and the LSB
    /// `2^(r-bits+1)` — the paper's "bits in the interval
    /// `[R_j - 1 ; R_j - D_bits]`".
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 63`.
    pub fn for_range_exponent(r: i32, bits: u32) -> Self {
        assert!(
            (2..=63).contains(&bits),
            "bits must be in 2..=63, got {bits}"
        );
        Quantizer {
            lsb_exp: r - bits as i32 + 1,
            bits,
        }
    }

    /// Quantiser for the `αᵢyᵢ` coefficients, bounded in `[-1, 1]` by
    /// construction (after normalisation), on `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= bits <= 63`.
    pub fn for_alpha(bits: u32) -> Self {
        Self::for_range_exponent(0, bits)
    }

    /// Weight of one LSB.
    pub fn lsb(&self) -> f64 {
        (self.lsb_exp as f64).exp2()
    }

    /// Largest representable code.
    pub fn max_code(&self) -> i64 {
        (1i64 << (self.bits - 1)) - 1
    }

    /// Smallest representable code.
    pub fn min_code(&self) -> i64 {
        -(1i64 << (self.bits - 1))
    }

    /// Encodes with round-to-nearest and saturation.
    pub fn encode(&self, x: f64) -> i64 {
        if x.is_nan() {
            return 0;
        }
        let q = (x / self.lsb()).round();
        if q >= self.max_code() as f64 {
            self.max_code()
        } else if q <= self.min_code() as f64 {
            self.min_code()
        } else {
            q as i64
        }
    }

    /// Decodes a code back to its real value.
    pub fn decode(&self, q: i64) -> f64 {
        q as f64 * self.lsb()
    }

    /// Round-trip quantisation of a real value.
    pub fn quantize(&self, x: f64) -> f64 {
        self.decode(self.encode(x))
    }
}

/// The accelerator's scale memory: one range exponent `R_j` per feature,
/// calibrated on the support-vector set (Eq 6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureScales {
    /// Per-feature range exponents.
    pub r: Vec<i32>,
}

impl FeatureScales {
    /// Calibrates per-feature ranges from the rows of the SV set
    /// (`rows[i][j]` = feature `j` of SV `i`), per Eq 6 of the paper.
    ///
    /// Accepts any iterator of row slices, so dense row-major blocks
    /// (`DenseMatrix::rows()`) feed it without copies and this crate
    /// stays dependency-free.
    ///
    /// # Panics
    ///
    /// Panics on ragged rows.
    pub fn calibrate<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let rows: Vec<&[f64]> = rows.into_iter().collect();
        let Some(first) = rows.first() else {
            return FeatureScales { r: Vec::new() };
        };
        let d = first.len();
        assert!(rows.iter().all(|r| r.len() == d), "ragged rows");
        let r = (0..d)
            .map(|j| {
                let col: Vec<f64> = rows.iter().map(|row| row[j]).collect();
                pow2_range_exponent(&col)
            })
            .collect();
        FeatureScales { r }
    }

    /// Single homogeneous scale across all features (the paper's
    /// sub-optimal comparison point in Fig 7 right): the maximum per-
    /// feature exponent, so every feature fits.
    pub fn homogenize(&self) -> FeatureScales {
        let rmax = self.r.iter().copied().max().unwrap_or(0);
        FeatureScales {
            r: vec![rmax; self.r.len()],
        }
    }

    /// Number of features.
    pub fn len(&self) -> usize {
        self.r.len()
    }

    /// Whether no features are present.
    pub fn is_empty(&self) -> bool {
        self.r.is_empty()
    }

    /// Per-feature quantisers at `d_bits`.
    pub fn quantizers(&self, d_bits: u32) -> Vec<Quantizer> {
        self.r
            .iter()
            .map(|&r| Quantizer::for_range_exponent(r, d_bits))
            .collect()
    }

    /// Encodes a feature vector with per-feature saturating quantisers.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.len()`.
    pub fn encode_vector(&self, x: &[f64], d_bits: u32) -> Vec<i64> {
        assert_eq!(x.len(), self.len(), "feature width mismatch");
        x.iter()
            .zip(self.r.iter())
            .map(|(&v, &r)| Quantizer::for_range_exponent(r, d_bits).encode(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_half_lsb() {
        let q = Quantizer::for_range_exponent(1, 9);
        for i in -100..=100 {
            let x = i as f64 * 0.017;
            if x.abs() < 1.9 {
                assert!((q.quantize(x) - x).abs() <= q.lsb() / 2.0 + 1e-15);
            }
        }
    }

    #[test]
    fn saturation_at_range_edges() {
        let q = Quantizer::for_range_exponent(2, 8); // range [-4, 4)
        assert_eq!(q.encode(100.0), q.max_code());
        assert_eq!(q.encode(-100.0), q.min_code());
        assert!((q.decode(q.max_code()) - 4.0).abs() < 2.0 * q.lsb());
        assert!((q.decode(q.min_code()) + 4.0).abs() < 1e-12);
    }

    #[test]
    fn encoding_is_monotone() {
        let q = Quantizer::for_range_exponent(0, 6);
        let mut prev = i64::MIN;
        for i in -50..=50 {
            let code = q.encode(i as f64 * 0.05);
            assert!(code >= prev);
            prev = code;
        }
    }

    #[test]
    fn alpha_quantizer_covers_unit_interval() {
        let q = Quantizer::for_alpha(15);
        assert!((q.quantize(0.73) - 0.73).abs() < 1e-4);
        assert!((q.quantize(-1.0) + 1.0).abs() < 1e-4);
        assert_eq!(q.encode(0.0), 0);
        // 1.0 saturates to max code (1 - lsb).
        assert_eq!(q.encode(1.0), q.max_code());
    }

    #[test]
    fn nan_encodes_to_zero() {
        let q = Quantizer::for_alpha(8);
        assert_eq!(q.encode(f64::NAN), 0);
    }

    #[test]
    #[should_panic(expected = "bits must be in 2..=63")]
    fn bits_validated() {
        let _ = Quantizer::for_range_exponent(0, 1);
    }

    #[test]
    fn feature_scales_calibration() {
        // Feature 0 spans ±0.8 (R=0), feature 1 spans ±100 (R=7).
        let rows: Vec<Vec<f64>> = vec![
            vec![0.8, 90.0],
            vec![-0.8, -90.0],
            vec![0.7, 110.0],
            vec![-0.7, -110.0],
        ];
        let s = FeatureScales::calibrate(rows.iter().map(Vec::as_slice));
        assert_eq!(s.len(), 2);
        assert_eq!(s.r[0], 0);
        assert_eq!(s.r[1], 7);
        let codes = s.encode_vector(&[0.5, 64.0], 9);
        let qs = s.quantizers(9);
        assert!((qs[0].decode(codes[0]) - 0.5).abs() <= qs[0].lsb() / 2.0);
        assert!((qs[1].decode(codes[1]) - 64.0).abs() <= qs[1].lsb() / 2.0);
    }

    #[test]
    fn homogenize_takes_worst_range() {
        let s = FeatureScales { r: vec![-3, 0, 7] };
        let h = s.homogenize();
        assert_eq!(h.r, vec![7, 7, 7]);
        // A small feature quantised with the homogeneous scale loses
        // precision: its error is far larger than with its own scale.
        let fine = Quantizer::for_range_exponent(-3, 9);
        let coarse = Quantizer::for_range_exponent(7, 9);
        let x = 0.05;
        assert!((coarse.quantize(x) - x).abs() > 10.0 * (fine.quantize(x) - x).abs());
    }

    #[test]
    fn empty_calibration() {
        let s = FeatureScales::calibrate(std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.homogenize().r, Vec::<i32>::new());
    }
}
