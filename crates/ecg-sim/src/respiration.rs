//! Respiration signal model.
//!
//! Respiration enters the ECG twice: it modulates the R-wave amplitude
//! (mechanical axis rotation — the basis of ECG-derived respiration) and it
//! drives the HF component of heart-rate variability (respiratory sinus
//! arrhythmia). Both consumers sample the same signal so the two effects
//! stay phase-locked, as they are physiologically.

use crate::rng::normal;
use crate::seizure::{combined_effect, BackgroundEpisode, SeizureEvent};
use rand::Rng;

/// Respiration generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RespirationModel {
    /// Resting respiration rate in Hz (typical adult ≈ 0.2–0.3).
    pub rate_hz: f64,
    /// Slow rate wander standard deviation (fraction of rate).
    pub rate_jitter: f64,
    /// Amplitude wander standard deviation (fraction of unit amplitude).
    pub amp_jitter: f64,
}

impl Default for RespirationModel {
    fn default() -> Self {
        RespirationModel {
            rate_hz: 0.25,
            rate_jitter: 0.05,
            amp_jitter: 0.1,
        }
    }
}

impl RespirationModel {
    /// Generates `n` samples at `fs` Hz, applying the seizures' respiration
    /// effects (rate multiplier and amplitude irregularity).
    ///
    /// The instantaneous rate is integrated into a phase so rate changes
    /// glide rather than jump; amplitude follows a slow AR(1) wander whose
    /// variance grows with ictal irregularity.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        n: usize,
        fs: f64,
        seizures: &[SeizureEvent],
        background: &[BackgroundEpisode],
        rng: &mut R,
    ) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        let mut phase = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut amp = 1.0f64;
        let mut rate_wander = 0.0f64;
        // AR(1) pole for slow wander (~30 s correlation time).
        let rho = (-1.0 / (30.0 * fs)).exp();
        for i in 0..n {
            let t = i as f64 / fs;
            let eff = combined_effect(seizures, background, t);
            // Ictal respiratory irregularity widens breath-to-breath rate
            // variability — in the EDR spectrum this broadens the
            // respiratory peak (a concentration change only quadratic
            // statistics of the band powers can pick up).
            let jitter_gain = 1.0 + 3.0 * eff.resp_irregularity;
            rate_wander = rho * rate_wander
                + normal(
                    rng,
                    0.0,
                    self.rate_jitter * jitter_gain * (1.0 - rho * rho).sqrt(),
                );
            let rate = (self.rate_hz * (1.0 + rate_wander)).max(0.05) * eff.resp_rate_multiplier;
            phase += std::f64::consts::TAU * rate / fs;
            let jitter = self.amp_jitter + eff.resp_irregularity;
            amp =
                rho * amp + (1.0 - rho) * 1.0 + normal(rng, 0.0, jitter * (1.0 - rho * rho).sqrt());
            amp = amp.clamp(0.2, 2.5);
            out.push(amp * phase.sin());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::substream;
    use biodsp::psd::{periodogram, Spectrum};
    use biodsp::window::WindowKind;

    fn spectrum(sig: &[f64], fs: f64) -> Spectrum {
        periodogram(sig, fs, WindowKind::Hann).unwrap()
    }

    #[test]
    fn resting_respiration_peaks_at_rate() {
        let model = RespirationModel::default();
        let fs = 8.0;
        let mut rng = substream(1, 1);
        let sig = model.generate(4096, fs, &[], &[], &mut rng);
        let spec = spectrum(&sig, fs);
        let peak = spec.peak_frequency().unwrap();
        assert!((peak - 0.25).abs() < 0.08, "peak {peak}");
    }

    #[test]
    fn ictal_respiration_is_faster() {
        let model = RespirationModel::default();
        let fs = 8.0;
        let seiz = [SeizureEvent::new(0.0, 10_000.0, 1.0)];
        let mut rng = substream(1, 2);
        let sig = model.generate(4096, fs, &seiz, &[], &mut rng);
        let spec = spectrum(&sig, fs);
        let peak = spec.peak_frequency().unwrap();
        assert!(peak > 0.29, "peak {peak}");
    }

    #[test]
    fn ictal_amplitude_is_more_irregular() {
        let model = RespirationModel::default();
        let fs = 8.0;
        let mut rng_a = substream(9, 1);
        let mut rng_b = substream(9, 1);
        let calm = model.generate(8192, fs, &[], &[], &mut rng_a);
        let seiz = [SeizureEvent::new(0.0, 10_000.0, 1.0)];
        let ictal = model.generate(8192, fs, &seiz, &[], &mut rng_b);
        // Envelope variability: std of |x| over windows.
        let env_var = |sig: &[f64]| {
            let envs: Vec<f64> = sig.chunks(64).map(biodsp::stats::rms).collect();
            biodsp::stats::std_dev(&envs)
        };
        assert!(env_var(&ictal) > env_var(&calm));
    }

    #[test]
    fn generation_is_reproducible() {
        let model = RespirationModel::default();
        let a = model.generate(256, 8.0, &[], &[], &mut substream(3, 3));
        let b = model.generate(256, 8.0, &[], &[], &mut substream(3, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn amplitude_stays_bounded() {
        let model = RespirationModel {
            amp_jitter: 0.5,
            ..Default::default()
        };
        let mut rng = substream(4, 4);
        let sig = model.generate(4096, 8.0, &[], &[], &mut rng);
        assert!(sig.iter().all(|v| v.abs() <= 2.5 + 1e-9));
    }
}
