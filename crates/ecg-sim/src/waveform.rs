//! Phase-domain PQRST waveform synthesis (ECGSYN-style).
//!
//! Each cardiac cycle maps to a phase θ ∈ [-π, π) with the R wave at θ = 0;
//! the ECG value is a sum of Gaussian bumps at fixed angular positions
//! (P, Q, R, S, T). Because positions are angular, intervals scale with the
//! instantaneous RR, as the real QT interval (approximately) does. The full
//! waveform amplitude is modulated by respiration, producing the
//! R-amplitude modulation that EDR extraction recovers downstream.

use crate::heart::BeatSeries;

/// One Gaussian wave component in the phase domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Wave {
    /// Angular position in radians relative to the R peak.
    pub theta: f64,
    /// Peak amplitude in millivolts.
    pub amplitude_mv: f64,
    /// Angular width (standard deviation) in radians.
    pub width: f64,
}

/// Morphology = the set of PQRST waves plus the respiratory modulation
/// gain.
#[derive(Debug, Clone, PartialEq)]
pub struct Morphology {
    /// Wave components (typically P, Q, R, S, T).
    pub waves: Vec<Wave>,
    /// Fractional amplitude modulation per unit respiration signal
    /// (EDR gain; ~0.1–0.2 in sinus rhythm).
    pub edr_gain: f64,
}

impl Default for Morphology {
    fn default() -> Self {
        Morphology {
            waves: vec![
                Wave {
                    theta: -1.20,
                    amplitude_mv: 0.12,
                    width: 0.25,
                }, // P
                Wave {
                    theta: -0.18,
                    amplitude_mv: -0.10,
                    width: 0.08,
                }, // Q
                Wave {
                    theta: 0.0,
                    amplitude_mv: 1.00,
                    width: 0.09,
                }, // R
                Wave {
                    theta: 0.20,
                    amplitude_mv: -0.20,
                    width: 0.09,
                }, // S
                Wave {
                    theta: 1.45,
                    amplitude_mv: 0.30,
                    width: 0.40,
                }, // T
            ],
            edr_gain: 0.15,
        }
    }
}

impl Morphology {
    /// Evaluates the template at phase `theta` (radians in [-π, π)).
    pub fn value_at_phase(&self, theta: f64) -> f64 {
        self.waves
            .iter()
            .map(|w| {
                let mut d = theta - w.theta;
                // Wrap to [-π, π).
                while d >= std::f64::consts::PI {
                    d -= std::f64::consts::TAU;
                }
                while d < -std::f64::consts::PI {
                    d += std::f64::consts::TAU;
                }
                w.amplitude_mv * (-d * d / (2.0 * w.width * w.width)).exp()
            })
            .sum()
    }

    /// Renders the ECG for the given beats at `fs` Hz over `n` samples.
    ///
    /// `resp` (sampled at `resp_fs`) modulates the instantaneous amplitude
    /// by `1 + edr_gain * resp(t)`.
    pub fn render(
        &self,
        beats: &BeatSeries,
        n: usize,
        fs: f64,
        resp: &[f64],
        resp_fs: f64,
    ) -> Vec<f64> {
        let mut out = vec![0.0f64; n];
        if beats.times.len() < 2 {
            return out;
        }
        let times = &beats.times;
        let mut k = 0usize; // current beat interval [times[k], times[k+1])
        for (i, o) in out.iter_mut().enumerate() {
            let t = i as f64 / fs;
            while k + 2 < times.len() && t >= times[k + 1] {
                k += 1;
            }
            // Phase: R peak at each beat time; phase runs 0 → 2π over the
            // interval, re-centred to [-π, π) around the *nearest* R.
            let (t0, t1) = (times[k], times[k + 1]);
            let rr = (t1 - t0).max(1e-3);
            let u = ((t - t0) / rr).clamp(-0.5, 1.5);
            let theta = if u < 0.5 {
                u * std::f64::consts::TAU
            } else {
                (u - 1.0) * std::f64::consts::TAU
            };
            let resp_idx = ((t * resp_fs) as usize).min(resp.len().saturating_sub(1));
            let resp_val = if resp.is_empty() { 0.0 } else { resp[resp_idx] };
            let amp = 1.0 + self.edr_gain * resp_val;
            *o = amp * self.value_at_phase(theta);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beats_every(rr: f64, dur: f64) -> BeatSeries {
        let mut t = 0.0;
        let mut times = Vec::new();
        while t < dur {
            times.push(t);
            t += rr;
        }
        BeatSeries { times }
    }

    #[test]
    fn r_peak_amplitude_at_beat_times() {
        let m = Morphology::default();
        let fs = 256.0;
        let beats = beats_every(0.8, 10.0);
        let ecg = m.render(&beats, (10.0 * fs) as usize, fs, &[], 8.0);
        for &bt in beats.times.iter().skip(1).take(8) {
            let idx = (bt * fs) as usize;
            let local_max = ecg[idx.saturating_sub(5)..idx + 5]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((local_max - 1.0).abs() < 0.08, "R amp {local_max}");
        }
    }

    #[test]
    fn phase_template_has_five_waves() {
        let m = Morphology::default();
        // R dominates at phase 0.
        assert!((m.value_at_phase(0.0) - 1.0).abs() < 0.05);
        // T wave positive bump.
        assert!(m.value_at_phase(1.45) > 0.25);
        // Q and S dips negative (evaluated at the troughs of the summed
        // template, slightly outside the nominal wave centres because the
        // R tail overlaps them).
        assert!(m.value_at_phase(-0.26) < 0.0);
        assert!(m.value_at_phase(0.22) < 0.0);
        // Far from all waves: near zero.
        assert!(m.value_at_phase(-2.5).abs() < 0.03);
    }

    #[test]
    fn wrapping_is_continuous() {
        let m = Morphology::default();
        let a = m.value_at_phase(std::f64::consts::PI - 1e-9);
        let b = m.value_at_phase(-std::f64::consts::PI + 1e-9);
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn respiration_modulates_r_amplitude() {
        let m = Morphology::default();
        let fs = 128.0;
        let resp_fs = 8.0;
        let dur = 60.0;
        let beats = beats_every(0.75, dur);
        // Slow ±1 respiration.
        let resp: Vec<f64> = (0..(dur * resp_fs) as usize)
            .map(|i| (std::f64::consts::TAU * 0.2 * i as f64 / resp_fs).sin())
            .collect();
        let ecg = m.render(&beats, (dur * fs) as usize, fs, &resp, resp_fs);
        let mut ramps = Vec::new();
        for &bt in beats.times.iter().skip(1) {
            let idx = (bt * fs) as usize;
            if idx + 5 >= ecg.len() {
                break;
            }
            let amp = ecg[idx - 5..idx + 5]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            ramps.push(amp);
        }
        let spread = biodsp::stats::max(&ramps) - biodsp::stats::min(&ramps);
        assert!(spread > 0.2, "spread {spread}"); // 2 * edr_gain ≈ 0.3
    }

    #[test]
    fn render_with_too_few_beats_is_silent() {
        let m = Morphology::default();
        let ecg = m.render(&BeatSeries { times: vec![1.0] }, 100, 100.0, &[], 8.0);
        assert!(ecg.iter().all(|&v| v == 0.0));
    }
}
