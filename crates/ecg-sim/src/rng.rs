//! Random-number helpers: Gaussian sampling via Box–Muller and seeded
//! sub-stream derivation, so each session is reproducible in isolation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Draws one sample from `N(mean, std^2)` using Box–Muller.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    // Avoid log(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mean + std * z
}

/// Uniform sample in `[lo, hi)`.
pub fn uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if lo == hi {
        return lo;
    }
    rng.gen_range(lo..hi)
}

/// Derives an independent, reproducible RNG from a master seed and a
/// domain-separation label (e.g. session index).
pub fn substream(master_seed: u64, label: u64) -> StdRng {
    // SplitMix64-style mixing keeps substreams decorrelated.
    let mut z = master_seed.wrapping_add(0x9E3779B97F4A7C15u64.wrapping_mul(label.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    StdRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments() {
        let mut rng = substream(1, 0);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut rng, 2.0, 3.0)).collect();
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        let v = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64;
        assert!((m - 2.0).abs() < 0.1, "mean {m}");
        assert!((v.sqrt() - 3.0).abs() < 0.1, "std {}", v.sqrt());
    }

    #[test]
    fn substreams_are_reproducible_and_distinct() {
        let a1: Vec<u64> = {
            let mut r = substream(7, 3);
            (0..8).map(|_| r.gen()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = substream(7, 3);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = substream(7, 4);
            (0..8).map(|_| r.gen()).collect()
        };
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = substream(5, 5);
        for _ in 0..1000 {
            let x = uniform(&mut rng, -2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        assert_eq!(uniform(&mut rng, 1.5, 1.5), 1.5);
    }
}
