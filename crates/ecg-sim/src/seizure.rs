//! Peri-ictal autonomic program and background (confounder) episodes.
//!
//! Focal seizures with autonomic involvement show, in ECG, a stereotyped
//! pattern that the paper's feature families pick up: pre-ictal heart-rate
//! rise, ictal tachycardia with suppressed beat-to-beat variability
//! (vagal withdrawal), altered respiration (rate increase, irregular
//! amplitude), and a slow post-ictal recovery. Patients differ in
//! *autonomic phenotype*: some express mostly the cardiac component, some
//! mostly the respiratory one — the `cardiac_gain`/`respiratory_gain`
//! fields carry that per-patient weighting into each event.
//!
//! Real monitoring-unit recordings also contain **confounders** that share
//! one axis of the ictal signature but not the conjunction: arousals and
//! exercise raise the heart rate *without* suppressing variability, and
//! quiet-rest phases lower variability *without* tachycardia. These are
//! modelled by [`BackgroundEpisode`] and are what makes a single linear
//! threshold insufficient (Table I of the paper: linear ≪ quadratic).

/// One annotated seizure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeizureEvent {
    /// Electrographic onset, seconds from session start.
    pub onset_s: f64,
    /// Ictal duration in seconds.
    pub duration_s: f64,
    /// Autonomic involvement in `(0, 1]`; weak seizures (low values) are
    /// harder to detect, which keeps sensitivity below 100% as in the
    /// paper's cohort.
    pub intensity: f64,
    /// Pre-ictal ramp length in seconds.
    pub preictal_s: f64,
    /// Post-ictal recovery time-constant in seconds.
    pub postictal_tau_s: f64,
    /// Patient-phenotype weight of the cardiac response (tachycardia +
    /// HRV suppression).
    pub cardiac_gain: f64,
    /// Patient-phenotype weight of the respiratory response (rate shift +
    /// irregularity), which surfaces in the EDR features.
    pub respiratory_gain: f64,
}

impl SeizureEvent {
    /// A seizure with typical ramp/recovery constants and unit phenotype
    /// gains.
    pub fn new(onset_s: f64, duration_s: f64, intensity: f64) -> Self {
        SeizureEvent {
            onset_s,
            duration_s,
            intensity: intensity.clamp(0.05, 1.0),
            preictal_s: 20.0,
            postictal_tau_s: 45.0,
            cardiac_gain: 1.0,
            respiratory_gain: 1.0,
        }
    }

    /// Sets the phenotype gains (builder style).
    pub fn with_gains(mut self, cardiac: f64, respiratory: f64) -> Self {
        self.cardiac_gain = cardiac.max(0.0);
        self.respiratory_gain = respiratory.max(0.0);
        self
    }

    /// End of the ictal phase.
    pub fn offset_s(&self) -> f64 {
        self.onset_s + self.duration_s
    }

    /// Activation level in `[0, 1]` at time `t`: 0 far from the seizure,
    /// ramping up pre-ictally, 1 during the ictal phase, exponentially
    /// decaying post-ictally.
    pub fn activation_at(&self, t: f64) -> f64 {
        if t < self.onset_s - self.preictal_s {
            0.0
        } else if t < self.onset_s {
            // Smooth (cosine) pre-ictal ramp.
            let u = (t - (self.onset_s - self.preictal_s)) / self.preictal_s;
            0.5 - 0.5 * (std::f64::consts::PI * u).cos()
        } else if t <= self.offset_s() {
            1.0
        } else {
            (-(t - self.offset_s()) / self.postictal_tau_s).exp()
        }
    }

    /// Whether the ictal interval overlaps `[start, end)`.
    pub fn overlaps(&self, start: f64, end: f64) -> bool {
        self.onset_s < end && self.offset_s() > start
    }
}

/// Kind of non-ictal (confounder) episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackgroundKind {
    /// Arousal / movement / light exercise: heart rate and respiration
    /// rise, but beat-to-beat variability does **not** collapse.
    Arousal,
    /// Quiet rest / drowsiness: variability shrinks while the heart rate
    /// drifts *down*.
    Calm,
}

/// One background (non-seizure) autonomic episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackgroundEpisode {
    /// Episode kind.
    pub kind: BackgroundKind,
    /// Start, seconds from session start.
    pub onset_s: f64,
    /// Duration in seconds.
    pub duration_s: f64,
    /// Strength in `(0, 1]`.
    pub intensity: f64,
}

impl BackgroundEpisode {
    /// A background episode with clamped intensity.
    pub fn new(kind: BackgroundKind, onset_s: f64, duration_s: f64, intensity: f64) -> Self {
        BackgroundEpisode {
            kind,
            onset_s,
            duration_s,
            intensity: intensity.clamp(0.05, 1.0),
        }
    }

    /// Smooth trapezoidal activation with 20 s edges.
    pub fn activation_at(&self, t: f64) -> f64 {
        let ramp = 20.0f64.min(self.duration_s / 3.0).max(1.0);
        let end = self.onset_s + self.duration_s;
        if t < self.onset_s || t > end {
            0.0
        } else if t < self.onset_s + ramp {
            (t - self.onset_s) / ramp
        } else if t > end - ramp {
            (end - t) / ramp
        } else {
            1.0
        }
    }
}

/// Instantaneous autonomic state produced by superposing seizure and
/// background effects on the resting state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutonomicEffect {
    /// Multiplies the baseline heart rate (1 = resting).
    pub hr_multiplier: f64,
    /// Multiplies HRV modulation amplitudes (1 = resting, → 0 suppressed).
    pub hrv_factor: f64,
    /// Multiplies the respiration rate.
    pub resp_rate_multiplier: f64,
    /// Respiration amplitude irregularity in `[0, 1]`.
    pub resp_irregularity: f64,
}

impl Default for AutonomicEffect {
    fn default() -> Self {
        AutonomicEffect {
            hr_multiplier: 1.0,
            hrv_factor: 1.0,
            resp_rate_multiplier: 1.0,
            resp_irregularity: 0.0,
        }
    }
}

/// Maximum fractional ictal heart-rate increase at intensity 1
/// (peri-ictal tachycardia commonly reaches 30–80% above baseline).
pub const MAX_HR_INCREASE: f64 = 0.55;
/// Maximum HRV suppression at intensity 1 (vagal withdrawal).
pub const MAX_HRV_SUPPRESSION: f64 = 0.80;
/// Maximum fractional respiration-rate increase at intensity 1.
pub const MAX_RESP_INCREASE: f64 = 0.60;
/// Maximum arousal heart-rate increase (overlaps the ictal range so the
/// conjunction, not the single axis, is discriminative).
pub const MAX_AROUSAL_HR_INCREASE: f64 = 0.55;
/// HRV change during arousal: neutral — sympathetic drive raises rate
/// while movement keeps beat-to-beat variability, so the HRV axis does
/// not separate arousal from rest.
pub const MAX_AROUSAL_HRV_BOOST: f64 = 0.0;
/// HRV reduction during calm phases (deep quiet rest reaches the ictal
/// suppression range, so low HRV alone is not an ictal marker).
pub const MAX_CALM_HRV_SUPPRESSION: f64 = 0.80;
/// HR reduction during calm phases.
pub const MAX_CALM_HR_DECREASE: f64 = 0.15;

/// Combines all seizures' and background episodes' effects at time `t`.
/// Seizure activations add saturating at 1, so overlapping pre/post-ictal
/// tails do not double-count.
pub fn combined_effect(
    seizures: &[SeizureEvent],
    background: &[BackgroundEpisode],
    t: f64,
) -> AutonomicEffect {
    // Seizure drive, split by phenotype axis.
    let mut cardiac = 0.0f64;
    let mut respiratory = 0.0f64;
    for s in seizures {
        let a = s.activation_at(t) * s.intensity;
        cardiac += a * s.cardiac_gain;
        respiratory += a * s.respiratory_gain;
    }
    let cardiac = cardiac.min(1.0);
    let respiratory = respiratory.min(1.0);

    // Background drives.
    let mut arousal = 0.0f64;
    let mut calm = 0.0f64;
    for b in background {
        let a = b.activation_at(t) * b.intensity;
        match b.kind {
            BackgroundKind::Arousal => arousal += a,
            BackgroundKind::Calm => calm += a,
        }
    }
    let arousal = arousal.min(1.0);
    let calm = calm.min(1.0);

    let hr_multiplier = (1.0 + MAX_HR_INCREASE * cardiac)
        * (1.0 + MAX_AROUSAL_HR_INCREASE * arousal)
        * (1.0 - MAX_CALM_HR_DECREASE * calm);
    let hrv_factor = (1.0 - MAX_HRV_SUPPRESSION * cardiac)
        * (1.0 + MAX_AROUSAL_HRV_BOOST * arousal)
        * (1.0 - MAX_CALM_HRV_SUPPRESSION * calm);
    let resp_rate_multiplier =
        (1.0 + MAX_RESP_INCREASE * respiratory) * (1.0 + 0.05 * arousal) * (1.0 - 0.08 * calm);
    let resp_irregularity = (0.9 * respiratory + 0.05 * arousal).min(1.0);
    AutonomicEffect {
        hr_multiplier,
        hrv_factor,
        resp_rate_multiplier,
        resp_irregularity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_profile() {
        let s = SeizureEvent::new(100.0, 40.0, 1.0);
        assert_eq!(s.activation_at(0.0), 0.0);
        assert_eq!(s.activation_at(100.0 - s.preictal_s - 1.0), 0.0);
        let mid_ramp = s.activation_at(100.0 - s.preictal_s / 2.0);
        assert!(mid_ramp > 0.3 && mid_ramp < 0.7);
        assert_eq!(s.activation_at(100.0), 1.0);
        assert_eq!(s.activation_at(140.0), 1.0);
        let post = s.activation_at(140.0 + s.postictal_tau_s);
        assert!((post - (-1.0f64).exp()).abs() < 1e-12);
        assert!(s.activation_at(140.0 + 15.0 * s.postictal_tau_s) < 1e-4);
    }

    #[test]
    fn activation_is_monotone_on_ramp() {
        let s = SeizureEvent::new(50.0, 30.0, 0.8);
        let mut prev = -1.0;
        for i in 0..=25 {
            let t = 25.0 + i as f64;
            let a = s.activation_at(t);
            assert!(a >= prev);
            prev = a;
        }
    }

    #[test]
    fn overlaps_logic() {
        let s = SeizureEvent::new(100.0, 30.0, 1.0);
        assert!(s.overlaps(90.0, 105.0));
        assert!(s.overlaps(120.0, 200.0));
        assert!(s.overlaps(0.0, 1000.0));
        assert!(!s.overlaps(0.0, 100.0)); // half-open: touches onset only
        assert!(!s.overlaps(130.0, 200.0));
    }

    #[test]
    fn resting_effect_is_identity() {
        let e = combined_effect(&[], &[], 123.0);
        assert_eq!(e, AutonomicEffect::default());
    }

    #[test]
    fn ictal_effect_scales_with_intensity() {
        let strong = SeizureEvent::new(10.0, 30.0, 1.0);
        let weak = SeizureEvent::new(10.0, 30.0, 0.3);
        let es = combined_effect(&[strong], &[], 20.0);
        let ew = combined_effect(&[weak], &[], 20.0);
        assert!(es.hr_multiplier > ew.hr_multiplier);
        assert!(es.hrv_factor < ew.hrv_factor);
        assert!(es.resp_rate_multiplier > ew.resp_rate_multiplier);
        assert!((es.hr_multiplier - (1.0 + MAX_HR_INCREASE)).abs() < 1e-12);
        assert!((es.hrv_factor - (1.0 - MAX_HRV_SUPPRESSION)).abs() < 1e-12);
    }

    #[test]
    fn phenotype_gains_split_the_response() {
        let cardiac_only = SeizureEvent::new(10.0, 30.0, 1.0).with_gains(1.0, 0.1);
        let resp_only = SeizureEvent::new(10.0, 30.0, 1.0).with_gains(0.1, 1.0);
        let ec = combined_effect(&[cardiac_only], &[], 20.0);
        let er = combined_effect(&[resp_only], &[], 20.0);
        assert!(ec.hr_multiplier > er.hr_multiplier);
        assert!(ec.hrv_factor < er.hrv_factor);
        assert!(er.resp_rate_multiplier > ec.resp_rate_multiplier);
        assert!(er.resp_irregularity > ec.resp_irregularity);
    }

    #[test]
    fn overlapping_seizures_saturate() {
        let a = SeizureEvent::new(10.0, 60.0, 1.0);
        let b = SeizureEvent::new(20.0, 60.0, 1.0);
        let e = combined_effect(&[a, b], &[], 40.0);
        assert!(e.hr_multiplier <= 1.0 + MAX_HR_INCREASE + 1e-12);
        assert!(e.hrv_factor >= 1.0 - MAX_HRV_SUPPRESSION - 1e-12);
    }

    #[test]
    fn intensity_is_clamped() {
        let s = SeizureEvent::new(0.0, 10.0, 7.0);
        assert!(s.intensity <= 1.0);
        let s2 = SeizureEvent::new(0.0, 10.0, -1.0);
        assert!(s2.intensity >= 0.05);
        let b = BackgroundEpisode::new(BackgroundKind::Arousal, 0.0, 10.0, 9.0);
        assert!(b.intensity <= 1.0);
    }

    #[test]
    fn arousal_raises_hr_without_vagal_withdrawal() {
        let b = BackgroundEpisode::new(BackgroundKind::Arousal, 100.0, 120.0, 1.0);
        let e = combined_effect(&[], &[b], 160.0);
        assert!(e.hr_multiplier > 1.3);
        assert!(e.hrv_factor >= 1.0, "arousal must not suppress HRV");
        // Overlap with the ictal HR range: the single HR axis cannot
        // separate arousal from a moderate seizure.
        let seiz = combined_effect(&[SeizureEvent::new(100.0, 120.0, 0.7)], &[], 160.0);
        assert!(e.hr_multiplier > seiz.hr_multiplier * 0.9);
    }

    #[test]
    fn calm_suppresses_hrv_without_tachycardia() {
        let b = BackgroundEpisode::new(BackgroundKind::Calm, 100.0, 300.0, 1.0);
        let e = combined_effect(&[], &[b], 200.0);
        assert!(e.hrv_factor < 0.6);
        assert!(e.hr_multiplier < 1.0, "calm lowers heart rate");
    }

    #[test]
    fn background_trapezoid_activation() {
        let b = BackgroundEpisode::new(BackgroundKind::Arousal, 100.0, 100.0, 1.0);
        assert_eq!(b.activation_at(50.0), 0.0);
        assert!((b.activation_at(110.0) - 0.5).abs() < 1e-12); // half-ramp
        assert_eq!(b.activation_at(150.0), 1.0);
        assert!((b.activation_at(190.0) - 0.5).abs() < 1e-12);
        assert_eq!(b.activation_at(250.0), 0.0);
    }
}
