//! Per-patient physiological profiles.
//!
//! Inter-patient variability is what makes a single linear threshold on
//! e.g. heart rate insufficient (one patient's ictal HR is another's
//! resting HR) and is therefore essential to reproducing Table I's
//! linear-vs-polynomial gap.

use crate::heart::HeartModel;
use crate::noise::NoiseModel;
use crate::respiration::RespirationModel;
use crate::rng::{substream, uniform};
use crate::waveform::Morphology;
use rand::Rng;

/// Everything that characterises one virtual patient.
#[derive(Debug, Clone, PartialEq)]
pub struct PatientProfile {
    /// Patient identifier (0-based).
    pub id: usize,
    /// Heart-rhythm parameters.
    pub heart: HeartModel,
    /// Respiration parameters.
    pub respiration: RespirationModel,
    /// ECG morphology.
    pub morphology: Morphology,
    /// Sensor-noise level for this patient's recordings.
    pub noise: NoiseModel,
    /// Scales the autonomic response to seizures (some patients show
    /// strong tachycardia, some barely any — that heterogeneity bounds
    /// attainable sensitivity).
    pub seizure_response: f64,
    /// Autonomic phenotype: weight of the cardiac ictal response
    /// (tachycardia + vagal withdrawal).
    pub cardiac_response: f64,
    /// Autonomic phenotype: weight of the respiratory ictal response
    /// (EDR rate/irregularity changes). Anti-correlated with
    /// [`PatientProfile::cardiac_response`] across the population, so no
    /// single feature axis detects every patient's seizures.
    pub respiratory_response: f64,
}

impl PatientProfile {
    /// Draws a profile for patient `id` from population distributions,
    /// reproducibly derived from `master_seed`.
    pub fn generate(id: usize, master_seed: u64) -> Self {
        let mut rng = substream(master_seed, 0x5041_5449 ^ id as u64);
        let base_hr = uniform(&mut rng, 58.0, 88.0);
        let heart = HeartModel {
            base_hr_bpm: base_hr,
            lf_amp: uniform(&mut rng, 0.025, 0.055),
            lf_freq_hz: uniform(&mut rng, 0.08, 0.12),
            hf_amp: uniform(&mut rng, 0.03, 0.08),
            jitter: uniform(&mut rng, 0.006, 0.015),
            drift_amp: uniform(&mut rng, 0.03, 0.08),
        };
        let respiration = RespirationModel {
            rate_hz: uniform(&mut rng, 0.18, 0.32),
            rate_jitter: uniform(&mut rng, 0.03, 0.08),
            amp_jitter: uniform(&mut rng, 0.05, 0.15),
        };
        let mut morphology = Morphology::default();
        // Morphological variability: R amplitude, T amplitude, EDR gain.
        let r_scale = uniform(&mut rng, 0.8, 1.3);
        for w in &mut morphology.waves {
            w.amplitude_mv *= r_scale;
        }
        if let Some(t_wave) = morphology.waves.last_mut() {
            t_wave.amplitude_mv *= uniform(&mut rng, 0.7, 1.3);
        }
        morphology.edr_gain = uniform(&mut rng, 0.10, 0.22);
        let noise = NoiseModel {
            white_std: uniform(&mut rng, 0.012, 0.035),
            wander_amp: uniform(&mut rng, 0.05, 0.15),
            mains_amp: uniform(&mut rng, 0.004, 0.015),
            emg_bursts_per_hour: uniform(&mut rng, 2.0, 10.0),
            emg_std: uniform(&mut rng, 0.04, 0.12),
            ..Default::default()
        };
        let seizure_response = uniform(&mut rng, 0.55, 1.0);
        let cardiac_response = uniform(&mut rng, 0.3, 1.0);
        let respiratory_response = (1.3 - cardiac_response).clamp(0.3, 1.0);
        PatientProfile {
            id,
            heart,
            respiration,
            morphology,
            noise,
            seizure_response,
            cardiac_response,
            respiratory_response,
        }
    }

    /// Draws a seizure intensity for this patient (response-scaled), in
    /// `[0.5, 1]`: every seizure expresses a detectable floor, with the
    /// weak tail bounding sensitivity as in the paper's cohort.
    pub fn draw_seizure_intensity<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (0.45 + 0.55 * self.seizure_response * uniform(rng, 0.5, 1.1)).clamp(0.5, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_reproducible() {
        let a = PatientProfile::generate(3, 42);
        let b = PatientProfile::generate(3, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn profiles_differ_between_patients_and_seeds() {
        let a = PatientProfile::generate(0, 42);
        let b = PatientProfile::generate(1, 42);
        let c = PatientProfile::generate(0, 43);
        assert_ne!(a.heart, b.heart);
        assert_ne!(a.heart, c.heart);
    }

    #[test]
    fn parameters_fall_in_population_ranges() {
        for id in 0..20 {
            let p = PatientProfile::generate(id, 7);
            assert!((58.0..88.0).contains(&p.heart.base_hr_bpm));
            assert!((0.18..0.32).contains(&p.respiration.rate_hz));
            assert!((0.55..1.0).contains(&p.seizure_response));
            assert!((0.3..=1.0).contains(&p.cardiac_response));
            assert!((0.3..=1.0).contains(&p.respiratory_response));
            // Anti-correlated phenotype axes: both cannot be maximal.
            assert!(p.cardiac_response + p.respiratory_response <= 1.75);
            assert!(p.morphology.edr_gain >= 0.10 && p.morphology.edr_gain <= 0.22);
        }
    }

    #[test]
    fn intensity_respects_bounds() {
        let p = PatientProfile::generate(2, 9);
        let mut rng = substream(9, 1);
        for _ in 0..200 {
            let i = p.draw_seizure_intensity(&mut rng);
            assert!((0.5..=1.0).contains(&i));
        }
    }

    #[test]
    fn population_hr_spread_is_wide() {
        let hrs: Vec<f64> = (0..7)
            .map(|id| PatientProfile::generate(id, 42).heart.base_hr_bpm)
            .collect();
        let spread = biodsp::stats::max(&hrs) - biodsp::stats::min(&hrs);
        assert!(spread > 8.0, "spread {spread}");
    }
}
