//! Dataset assembly: 7 patients, 24 sessions, 34 seizures — the cohort
//! geometry of the paper — at three size presets.

use crate::patient::PatientProfile;
use crate::rng::{substream, uniform};
use crate::seizure::{BackgroundEpisode, BackgroundKind, SeizureEvent};
use crate::session::SessionSpec;
use rand::seq::SliceRandom;
use rand::Rng;

/// Dataset size preset. All presets keep the paper's fold semantics
/// (leave-one-session-out over all sessions); they differ only in session
/// length and window size so tests stay fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// 3 patients × 2 sessions × 6 min, 8 seizures, 40 s windows — for
    /// unit/integration tests.
    Tiny,
    /// 7 patients / 24 sessions × 50 min, 34 seizures, 3-min windows —
    /// default for experiment binaries (~20 h of ECG).
    #[default]
    Lite,
    /// 7 patients / 24 sessions × 5.83 h ≈ 140 h, 34 seizures, 3-min
    /// windows — full paper-scale cohort.
    Paper,
}

impl Scale {
    /// Sessions per patient.
    pub fn sessions_per_patient(self) -> &'static [usize] {
        match self {
            Scale::Tiny => &[2, 2, 2],
            Scale::Lite | Scale::Paper => &[4, 4, 4, 3, 3, 3, 3],
        }
    }

    /// Total session count.
    pub fn n_sessions(self) -> usize {
        self.sessions_per_patient().iter().sum()
    }

    /// Number of patients.
    pub fn n_patients(self) -> usize {
        self.sessions_per_patient().len()
    }

    /// Session duration in seconds.
    pub fn session_duration_s(self) -> f64 {
        match self {
            Scale::Tiny => 360.0,
            Scale::Lite => 3000.0,
            Scale::Paper => 21_000.0,
        }
    }

    /// Total seizure count across the dataset.
    pub fn n_seizures(self) -> usize {
        match self {
            Scale::Tiny => 8,
            Scale::Lite | Scale::Paper => 34,
        }
    }

    /// Analysis window length in seconds (the paper uses 3-minute
    /// windows).
    pub fn window_s(self) -> f64 {
        match self {
            Scale::Tiny => 40.0,
            Scale::Lite | Scale::Paper => 180.0,
        }
    }

    /// Ictal duration range in seconds.
    pub fn seizure_duration_range(self) -> (f64, f64) {
        match self {
            Scale::Tiny => (25.0, 45.0),
            Scale::Lite | Scale::Paper => (100.0, 170.0),
        }
    }

    /// ECG sampling rate in Hz.
    pub fn fs(self) -> f64 {
        128.0
    }
}

/// A full dataset specification: all sessions, cheap to clone, samples
/// rendered per session via [`SessionSpec::synthesize`].
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Size preset used to build this spec.
    pub scale: Scale,
    /// Master seed.
    pub seed: u64,
    /// Session specifications in global session order.
    pub sessions: Vec<SessionSpec>,
}

impl DatasetSpec {
    /// Builds the cohort: patient profiles, session layout and seizure
    /// placement, all reproducible from `seed`.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let mut rng = substream(seed, 0x4441_5441);
        let patients: Vec<PatientProfile> = (0..scale.n_patients())
            .map(|id| PatientProfile::generate(id, seed))
            .collect();

        // Layout sessions.
        let mut sessions = Vec::with_capacity(scale.n_sessions());
        let mut global = 0usize;
        for (pid, &count) in scale.sessions_per_patient().iter().enumerate() {
            for _ in 0..count {
                sessions.push(SessionSpec {
                    patient: patients[pid].clone(),
                    session_index: global,
                    seed: seed ^ (global as u64) << 20,
                    duration_s: scale.session_duration_s(),
                    fs: scale.fs(),
                    seizures: Vec::new(),
                    background: Vec::new(),
                });
                global += 1;
            }
        }

        // Distribute seizures: shuffle session order, deal one seizure per
        // session per round until the budget is spent, so counts differ by
        // at most one and a few sessions may stay seizure-free.
        let mut order: Vec<usize> = (0..sessions.len()).collect();
        order.shuffle(&mut rng);
        let mut remaining = scale.n_seizures();
        let mut round = 0usize;
        while remaining > 0 {
            for &si in &order {
                if remaining == 0 {
                    break;
                }
                // Skip some sessions in the first round so not every
                // session has a seizure (mirrors clinical monitoring where
                // many sessions are uneventful).
                if round == 0 && rng.gen::<f64>() < 0.15 {
                    continue;
                }
                if let Some(ev) = place_seizure(&sessions[si], scale, &mut rng) {
                    sessions[si].seizures.push(ev);
                    remaining -= 1;
                }
            }
            round += 1;
            if round > 16 {
                break; // give up rather than loop forever on tiny sessions
            }
        }
        for s in &mut sessions {
            s.seizures.sort_by(|a, b| a.onset_s.total_cmp(&b.onset_s));
        }

        // Background confounders: arousals (~7/h) and calm phases (~4/h),
        // kept clear of seizures so the ictal windows stay unambiguous.
        for s in &mut sessions {
            let hours = s.duration_s / 3600.0;
            let n_arousal = (5.0 * hours).round().max(1.0) as usize;
            let n_calm = (3.0 * hours).round().max(1.0) as usize;
            for k in 0..n_arousal + n_calm {
                let (kind, dmin, dmax) = if k < n_arousal {
                    (BackgroundKind::Arousal, 45.0, 150.0)
                } else {
                    (BackgroundKind::Calm, 120.0, 300.0)
                };
                for _ in 0..16 {
                    let duration = uniform(&mut rng, dmin, dmax);
                    let hi = s.duration_s - duration - 10.0;
                    if hi <= 10.0 {
                        break;
                    }
                    let onset = uniform(&mut rng, 10.0, hi);
                    let clear_of_seizures = s.seizures.iter().all(|sz| {
                        onset + duration + scale.window_s() < sz.onset_s - sz.preictal_s
                            || onset > sz.offset_s() + 2.0 * scale.window_s()
                    });
                    if clear_of_seizures {
                        s.background.push(BackgroundEpisode::new(
                            kind,
                            onset,
                            duration,
                            uniform(&mut rng, 0.5, 1.0),
                        ));
                        break;
                    }
                }
            }
            s.background.sort_by(|a, b| a.onset_s.total_cmp(&b.onset_s));
        }
        DatasetSpec {
            scale,
            seed,
            sessions,
        }
    }

    /// Total seizure count actually placed.
    pub fn n_seizures(&self) -> usize {
        self.sessions.iter().map(|s| s.seizures.len()).sum()
    }

    /// Total recorded hours.
    pub fn total_hours(&self) -> f64 {
        self.sessions.iter().map(|s| s.duration_s).sum::<f64>() / 3600.0
    }
}

/// Tries to place one seizure in `session` respecting edge margins and a
/// minimum gap to existing seizures; returns `None` after bounded retries.
fn place_seizure<R: Rng + ?Sized>(
    session: &SessionSpec,
    scale: Scale,
    rng: &mut R,
) -> Option<SeizureEvent> {
    let (dmin, dmax) = scale.seizure_duration_range();
    let margin = scale.window_s().max(60.0);
    let min_gap = (session.duration_s * 0.1).max(2.0 * scale.window_s());
    for _ in 0..32 {
        let duration = uniform(rng, dmin, dmax);
        let lo = margin;
        let hi = session.duration_s - margin - duration;
        if hi <= lo {
            return None;
        }
        let onset = uniform(rng, lo, hi);
        let candidate =
            SeizureEvent::new(onset, duration, session.patient.draw_seizure_intensity(rng))
                .with_gains(
                    session.patient.cardiac_response,
                    session.patient.respiratory_response,
                );
        let clear = session
            .seizures
            .iter()
            .all(|s| (candidate.onset_s - s.onset_s).abs() > min_gap + s.duration_s);
        if clear {
            return Some(candidate);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_geometry() {
        let d = DatasetSpec::new(Scale::Tiny, 1);
        assert_eq!(d.sessions.len(), 6);
        assert_eq!(d.scale.n_patients(), 3);
        assert_eq!(d.n_seizures(), 8);
        // Global indices are unique and dense.
        let mut idx: Vec<usize> = d.sessions.iter().map(|s| s.session_index).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn lite_geometry_matches_paper_cohort() {
        let d = DatasetSpec::new(Scale::Lite, 42);
        assert_eq!(d.sessions.len(), 24);
        assert_eq!(d.scale.n_patients(), 7);
        assert_eq!(d.n_seizures(), 34);
        // Paper: 7 patients, 24 sessions, 34 seizures.
        let patients: std::collections::HashSet<usize> =
            d.sessions.iter().map(|s| s.patient.id).collect();
        assert_eq!(patients.len(), 7);
    }

    #[test]
    fn paper_scale_is_140_hours() {
        let d = DatasetSpec::new(Scale::Paper, 5);
        assert!((d.total_hours() - 140.0).abs() < 1.0, "{}", d.total_hours());
    }

    #[test]
    fn seizures_are_inside_sessions_and_sorted() {
        let d = DatasetSpec::new(Scale::Lite, 9);
        for s in &d.sessions {
            let mut prev = f64::NEG_INFINITY;
            for ev in &s.seizures {
                assert!(ev.onset_s >= prev);
                prev = ev.onset_s;
                assert!(ev.onset_s > 0.0);
                assert!(ev.offset_s() < s.duration_s);
            }
        }
    }

    #[test]
    fn reproducible_and_seed_sensitive() {
        let a = DatasetSpec::new(Scale::Tiny, 11);
        let b = DatasetSpec::new(Scale::Tiny, 11);
        let c = DatasetSpec::new(Scale::Tiny, 12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn seizure_counts_are_balanced() {
        let d = DatasetSpec::new(Scale::Lite, 3);
        let max = d.sessions.iter().map(|s| s.seizures.len()).max().unwrap();
        assert!(max <= 3, "max per session {max}");
    }

    #[test]
    fn window_count_is_consistent() {
        let d = DatasetSpec::new(Scale::Tiny, 2);
        let rec = d.sessions[0].synthesize();
        let w = rec.window_labels(d.scale.window_s());
        assert_eq!(w.len(), (360.0 / 40.0) as usize);
    }
}
