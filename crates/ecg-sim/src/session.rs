//! Recording sessions: specification (cheap, seed-only) and synthesis
//! (samples on demand, so a 24-session dataset never has to live in memory
//! at once).

use crate::patient::PatientProfile;
use crate::rng::substream;
use crate::seizure::{BackgroundEpisode, SeizureEvent};

/// Compact description of one session; `synthesize` renders the samples.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// The recorded patient.
    pub patient: PatientProfile,
    /// Global session index (0-based, unique across the dataset); the
    /// leave-one-session-out folds key on this.
    pub session_index: usize,
    /// Seed for this session's noise/rhythm randomness.
    pub seed: u64,
    /// Session length in seconds.
    pub duration_s: f64,
    /// ECG sampling rate in Hz.
    pub fs: f64,
    /// Annotated seizures (session-relative times).
    pub seizures: Vec<SeizureEvent>,
    /// Background (confounder) episodes: arousals and calm phases.
    pub background: Vec<BackgroundEpisode>,
}

/// A rendered session: ECG samples plus annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionRecording {
    /// Patient id.
    pub patient_id: usize,
    /// Global session index.
    pub session_index: usize,
    /// Sampling rate in Hz.
    pub fs: f64,
    /// ECG samples in millivolts.
    pub ecg: Vec<f64>,
    /// Seizure annotations.
    pub seizures: Vec<SeizureEvent>,
}

/// One fixed-length analysis window with its ground-truth label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowLabel {
    /// First sample of the window.
    pub start_sample: usize,
    /// Window length in samples.
    pub len_samples: usize,
    /// Window start in seconds.
    pub start_s: f64,
    /// `true` when the window overlaps an ictal interval (class +1 in the
    /// paper).
    pub is_seizure: bool,
}

impl SessionSpec {
    /// Renders the full session: respiration → beats → waveform → noise.
    pub fn synthesize(&self) -> SessionRecording {
        const RESP_FS: f64 = 8.0;
        let mut rng = substream(self.seed, 0x5345_5353 ^ self.session_index as u64);
        let n = (self.duration_s * self.fs) as usize;
        let n_resp = (self.duration_s * RESP_FS) as usize;
        let resp = self.patient.respiration.generate(
            n_resp,
            RESP_FS,
            &self.seizures,
            &self.background,
            &mut rng,
        );
        let beats = self.patient.heart.generate_beats(
            self.duration_s,
            &self.seizures,
            &self.background,
            &resp,
            RESP_FS,
            &mut rng,
        );
        let mut ecg = self
            .patient
            .morphology
            .render(&beats, n, self.fs, &resp, RESP_FS);
        self.patient.noise.apply(&mut ecg, self.fs, &mut rng);
        SessionRecording {
            patient_id: self.patient.id,
            session_index: self.session_index,
            fs: self.fs,
            ecg,
            seizures: self.seizures.clone(),
        }
    }
}

impl SessionRecording {
    /// Session length in seconds.
    pub fn duration_s(&self) -> f64 {
        self.ecg.len() as f64 / self.fs
    }

    /// Splits the session into non-overlapping `window_s`-second windows
    /// and labels each by ictal content. The trailing partial window is
    /// dropped, as in the paper's fixed-window protocol.
    ///
    /// A window is labelled seizure when at least 35% of it is ictal, or
    /// when it holds the largest ictal share of some seizure (so short
    /// seizures straddling a window boundary are never lost from the
    /// positive class).
    ///
    /// The window length in samples is `window_s × fs` rounded to the
    /// nearest sample — the same rule as
    /// `seizure_core::stream::StreamConfig::non_overlapping`, so batch
    /// labelling and streaming always agree on window geometry. A
    /// non-finite or non-positive `window_s` yields no windows.
    pub fn window_labels(&self, window_s: f64) -> Vec<WindowLabel> {
        if !window_s.is_finite() || window_s <= 0.0 {
            return Vec::new();
        }
        let len = (window_s * self.fs).round() as usize;
        if len == 0 || len > self.ecg.len() {
            return Vec::new();
        }
        let n_windows = self.ecg.len() / len;
        let overlap_of = |w: usize, s: &SeizureEvent| -> f64 {
            let t0 = (w * len) as f64 / self.fs;
            let t1 = t0 + window_s;
            (s.offset_s().min(t1) - s.onset_s.max(t0)).max(0.0)
        };
        let mut positive = vec![false; n_windows];
        for (w, p) in positive.iter_mut().enumerate() {
            *p = self
                .seizures
                .iter()
                .map(|s| overlap_of(w, s))
                .fold(0.0, f64::max)
                >= 0.35 * window_s;
        }
        // Guarantee each seizure its best window.
        for s in &self.seizures {
            if let Some((best, ov)) = (0..n_windows)
                .map(|w| (w, overlap_of(w, s)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
            {
                if ov > 5.0 {
                    positive[best] = true;
                }
            }
        }
        (0..n_windows)
            .map(|w| WindowLabel {
                start_sample: w * len,
                len_samples: len,
                start_s: (w * len) as f64 / self.fs,
                is_seizure: positive[w],
            })
            .collect()
    }

    /// Borrowed view of one window's samples.
    ///
    /// # Panics
    ///
    /// Panics if the label does not come from this recording (out of
    /// range).
    pub fn window_samples(&self, label: &WindowLabel) -> &[f64] {
        &self.ecg[label.start_sample..label.start_sample + label.len_samples]
    }

    /// Chunked replay of the session: successive `chunk_len`-sample ECG
    /// slices (the last may be shorter), in temporal order. This is how
    /// tests and benches drive a streaming pipeline realistically — one
    /// push per "radio packet" instead of one per session.
    ///
    /// # Panics
    ///
    /// Panics when `chunk_len == 0`.
    pub fn chunks(&self, chunk_len: usize) -> impl Iterator<Item = &[f64]> {
        assert!(chunk_len > 0, "chunk_len must be >= 1");
        self.ecg.chunks(chunk_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patient::PatientProfile;

    fn tiny_spec(seizures: Vec<SeizureEvent>) -> SessionSpec {
        SessionSpec {
            patient: PatientProfile::generate(0, 42),
            session_index: 0,
            seed: 42,
            duration_s: 120.0,
            fs: 128.0,
            seizures,
            background: Vec::new(),
        }
    }

    #[test]
    fn synthesis_produces_expected_length_and_is_reproducible() {
        let spec = tiny_spec(vec![]);
        let a = spec.synthesize();
        let b = spec.synthesize();
        assert_eq!(a.ecg.len(), (120.0 * 128.0) as usize);
        assert_eq!(a, b);
        assert!((a.duration_s() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn ecg_looks_like_ecg() {
        let spec = tiny_spec(vec![]);
        let rec = spec.synthesize();
        // R peaks ≈ 1 mV dominate; RMS well below peak.
        let peak = biodsp::stats::max(&rec.ecg);
        let rms = biodsp::stats::rms(&rec.ecg);
        assert!(peak > 0.5 && peak < 2.5, "peak {peak}");
        assert!(rms < 0.45 * peak, "rms {rms} peak {peak}");
        // QRS detector finds a plausible beat count.
        let det = biodsp::qrs::PanTompkins::default()
            .detect(&rec.ecg, rec.fs)
            .unwrap();
        let hr = det.mean_heart_rate_bpm().unwrap();
        assert!((40.0..140.0).contains(&hr), "hr {hr}");
    }

    #[test]
    fn window_labels_mark_seizure_overlap() {
        let spec = tiny_spec(vec![SeizureEvent::new(65.0, 20.0, 1.0)]);
        let rec = spec.synthesize();
        let labels = rec.window_labels(30.0);
        assert_eq!(labels.len(), 4);
        assert!(!labels[0].is_seizure);
        assert!(!labels[1].is_seizure);
        assert!(labels[2].is_seizure); // [60, 90) overlaps [65, 85)
        assert!(!labels[3].is_seizure);
        assert_eq!(labels[1].start_sample, (30.0 * 128.0) as usize);
        let w = rec.window_samples(&labels[2]);
        assert_eq!(w.len(), (30.0 * 128.0) as usize);
    }

    #[test]
    fn chunked_replay_covers_the_whole_session_in_order() {
        let rec = tiny_spec(vec![]).synthesize();
        for chunk_len in [1usize, 7, 128, 4096, usize::MAX] {
            let mut rebuilt = Vec::with_capacity(rec.ecg.len());
            for chunk in rec.chunks(chunk_len.min(rec.ecg.len() + 1)) {
                assert!(chunk.len() <= chunk_len);
                rebuilt.extend_from_slice(chunk);
            }
            assert_eq!(rebuilt, rec.ecg, "chunk_len {chunk_len}");
        }
        // All chunks except the last are exactly chunk_len long.
        let sizes: Vec<usize> = rec.chunks(1000).map(<[f64]>::len).collect();
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 1000));
    }

    #[test]
    #[should_panic(expected = "chunk_len")]
    fn zero_chunk_len_panics() {
        let rec = tiny_spec(vec![]).synthesize();
        let _ = rec.chunks(0);
    }

    #[test]
    fn degenerate_window_lengths() {
        let rec = tiny_spec(vec![]).synthesize();
        assert!(rec.window_labels(0.0).is_empty());
        assert!(rec.window_labels(1e9).is_empty());
        assert!(rec.window_labels(f64::NAN).is_empty());
        assert!(rec.window_labels(f64::INFINITY).is_empty());
        assert!(rec.window_labels(-30.0).is_empty());
    }

    #[test]
    fn window_length_rounds_to_nearest_sample() {
        let rec = tiny_spec(vec![]).synthesize();
        // 30 s − ¼ sample at 128 Hz → 3839.75 samples, rounds up to 3840.
        let labels = rec.window_labels(30.0 - 0.25 / 128.0);
        assert_eq!(labels[0].len_samples, 3840);
        // 30 s + ¾ sample → 3840.75, rounds to 3841 (not truncated).
        let labels = rec.window_labels(30.0 + 0.75 / 128.0);
        assert_eq!(labels[0].len_samples, 3841);
    }

    #[test]
    fn different_sessions_differ() {
        let mut s1 = tiny_spec(vec![]);
        let mut s2 = tiny_spec(vec![]);
        s2.session_index = 1;
        s1.session_index = 0;
        let a = s1.synthesize();
        let b = s2.synthesize();
        assert_ne!(a.ecg, b.ecg);
    }
}
