//! Beat-time (RR-interval) generation with an autonomic HRV model.
//!
//! The RR series is the carrier of most of the paper's discriminative
//! information: HRV features (1–8) and Lorentz-plot features (9–15) are
//! computed directly from it, and ictal tachycardia / vagal withdrawal act
//! on it through [`crate::seizure::combined_effect`].

use crate::rng::normal;
use crate::seizure::{combined_effect, BackgroundEpisode, SeizureEvent};
use rand::Rng;

/// Heart-rhythm generator parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeartModel {
    /// Resting heart rate in beats per minute.
    pub base_hr_bpm: f64,
    /// LF (Mayer wave, ~0.1 Hz) RR-modulation amplitude (fraction of RR).
    pub lf_amp: f64,
    /// LF centre frequency in Hz.
    pub lf_freq_hz: f64,
    /// HF (respiratory sinus arrhythmia) RR-modulation amplitude.
    pub hf_amp: f64,
    /// Per-beat white jitter standard deviation (fraction of RR).
    pub jitter: f64,
    /// Very-slow HR drift amplitude (fraction of base HR) over minutes.
    pub drift_amp: f64,
}

impl Default for HeartModel {
    fn default() -> Self {
        HeartModel {
            base_hr_bpm: 70.0,
            lf_amp: 0.04,
            lf_freq_hz: 0.1,
            hf_amp: 0.05,
            jitter: 0.01,
            drift_amp: 0.05,
        }
    }
}

/// Generated beat sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BeatSeries {
    /// Beat (R-wave) times in seconds, strictly increasing.
    pub times: Vec<f64>,
}

impl BeatSeries {
    /// RR intervals in seconds.
    pub fn rr_intervals(&self) -> Vec<f64> {
        self.times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Number of beats.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series contains no beats.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }
}

impl HeartModel {
    /// Generates beat times covering `[0, duration_s)`.
    ///
    /// `resp` is the respiration signal sampled at `resp_fs`; the HF
    /// modulation samples it at each beat so RSA stays phase-locked to the
    /// respiration that also modulates R-wave amplitude.
    pub fn generate_beats<R: Rng + ?Sized>(
        &self,
        duration_s: f64,
        seizures: &[SeizureEvent],
        background: &[BackgroundEpisode],
        resp: &[f64],
        resp_fs: f64,
        rng: &mut R,
    ) -> BeatSeries {
        let mut times = Vec::with_capacity((duration_s * self.base_hr_bpm / 60.0) as usize + 8);
        let mut t = 0.0f64;
        let lf_phase0 = rng.gen_range(0.0..std::f64::consts::TAU);
        let drift_phase0 = rng.gen_range(0.0..std::f64::consts::TAU);
        let drift_freq = 1.0 / 300.0; // 5-minute drift period
        while t < duration_s {
            times.push(t);
            let eff = combined_effect(seizures, background, t);
            let drift = 1.0
                + self.drift_amp * (std::f64::consts::TAU * drift_freq * t + drift_phase0).sin();
            let hr = self.base_hr_bpm * drift * eff.hr_multiplier;
            let rr0 = 60.0 / hr.max(20.0);
            let lf = self.lf_amp * (std::f64::consts::TAU * self.lf_freq_hz * t + lf_phase0).sin();
            let resp_idx = ((t * resp_fs) as usize).min(resp.len().saturating_sub(1));
            let resp_val = if resp.is_empty() { 0.0 } else { resp[resp_idx] };
            // RSA amplitude falls with respiration rate (vagal low-pass),
            // so ictal/arousal tachypnoea cannot masquerade as intact
            // beat-to-beat variability in RMSSD-style statistics.
            let hf = self.hf_amp * resp_val
                / (eff.resp_rate_multiplier
                    * eff.resp_rate_multiplier
                    * (1.0 + eff.resp_irregularity));
            let jit = normal(rng, 0.0, self.jitter);
            let rr = rr0 * (1.0 + eff.hrv_factor * (lf + hf + jit));
            t += rr.clamp(0.25, 2.5);
        }
        BeatSeries { times }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::respiration::RespirationModel;
    use crate::rng::substream;
    use biodsp::stats;

    fn make_resp(duration_s: f64, fs: f64, seed: u64) -> Vec<f64> {
        RespirationModel::default().generate(
            (duration_s * fs) as usize,
            fs,
            &[],
            &[],
            &mut substream(seed, 77),
        )
    }

    #[test]
    fn resting_rate_matches_baseline() {
        let model = HeartModel::default();
        let resp = make_resp(300.0, 8.0, 1);
        let beats = model.generate_beats(300.0, &[], &[], &resp, 8.0, &mut substream(1, 0));
        let rr = beats.rr_intervals();
        let hr = 60.0 / stats::mean(&rr);
        assert!((hr - 70.0).abs() < 6.0, "hr {hr}");
        assert!(beats.times.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn ictal_tachycardia_and_hrv_suppression() {
        let model = HeartModel::default();
        let fs = 8.0;
        let dur = 240.0;
        let seiz = [SeizureEvent::new(0.0, dur + 100.0, 1.0)];
        let resp_calm = make_resp(dur, fs, 2);
        let calm = model.generate_beats(dur, &[], &[], &resp_calm, fs, &mut substream(2, 0));
        let resp_ict = RespirationModel::default().generate(
            (dur * fs) as usize,
            fs,
            &seiz,
            &[],
            &mut substream(2, 77),
        );
        let ictal = model.generate_beats(dur, &seiz, &[], &resp_ict, fs, &mut substream(2, 0));
        let hr = |b: &BeatSeries| 60.0 / stats::mean(&b.rr_intervals());
        assert!(
            hr(&ictal) > hr(&calm) * 1.3,
            "{} vs {}",
            hr(&ictal),
            hr(&calm)
        );
        // RR variability (normalised by mean RR) is suppressed ictally.
        let cv = |b: &BeatSeries| {
            let rr = b.rr_intervals();
            stats::std_dev(&rr) / stats::mean(&rr)
        };
        assert!(cv(&ictal) < cv(&calm), "{} vs {}", cv(&ictal), cv(&calm));
    }

    #[test]
    fn rsa_is_visible_in_rr_spectrum() {
        // HF modulation should put a spectral peak near the respiration
        // rate in the resampled tachogram.
        let model = HeartModel {
            hf_amp: 0.08,
            lf_amp: 0.01,
            jitter: 0.003,
            drift_amp: 0.0,
            ..Default::default()
        };
        let fs = 8.0;
        let dur = 600.0;
        let resp = make_resp(dur, fs, 3);
        let beats = model.generate_beats(dur, &[], &[], &resp, fs, &mut substream(3, 0));
        let rr = beats.rr_intervals();
        let t: Vec<f64> = beats.times[1..].to_vec();
        let tach = biodsp::resample::resample_uniform(&t, &rr, 4.0).unwrap();
        let spec =
            biodsp::psd::welch(&tach, 4.0, 512, 0.5, biodsp::window::WindowKind::Hann).unwrap();
        let hf = spec.band_power(0.15, 0.4);
        let vlf = spec.band_power(0.003, 0.04);
        assert!(hf > vlf, "hf {hf} vlf {vlf}");
        let peak_in_hf: f64 = {
            let idx = spec
                .freqs
                .iter()
                .enumerate()
                .filter(|(_, &f)| (0.15..0.4).contains(&f))
                .max_by(|a, b| spec.power[a.0].total_cmp(&spec.power[b.0]))
                .map(|(i, _)| spec.freqs[i])
                .unwrap();
            idx
        };
        assert!((peak_in_hf - 0.25).abs() < 0.08, "peak {peak_in_hf}");
    }

    #[test]
    fn beats_cover_duration_and_are_reproducible() {
        let model = HeartModel::default();
        let resp = make_resp(120.0, 8.0, 4);
        let a = model.generate_beats(120.0, &[], &[], &resp, 8.0, &mut substream(4, 0));
        let b = model.generate_beats(120.0, &[], &[], &resp, 8.0, &mut substream(4, 0));
        assert_eq!(a, b);
        assert!(*a.times.last().unwrap() < 120.0);
        assert!(*a.times.last().unwrap() > 117.0);
        assert!(!a.is_empty());
        assert_eq!(a.rr_intervals().len() + 1, a.len());
    }

    #[test]
    fn empty_respiration_is_tolerated() {
        let model = HeartModel::default();
        let beats = model.generate_beats(60.0, &[], &[], &[], 8.0, &mut substream(5, 0));
        assert!(beats.len() > 50);
    }
}
