#![forbid(unsafe_code)]
//! # ecg-sim — synthetic ECG dataset generator
//!
//! Stand-in for the clinical cohort used by Ferretti et al. (DATE 2019):
//! 7 patients with refractory epilepsy, 24 recording sessions, 34 annotated
//! focal seizures. Real recordings cannot be redistributed, so this crate
//! synthesises physiologically-grounded ECG with the properties the paper's
//! pipeline actually consumes:
//!
//! * an autonomic RR-interval process with LF (Mayer-wave) and HF
//!   (respiratory sinus arrhythmia) components,
//! * an ECGSYN-style phase-domain PQRST waveform whose R-wave amplitude is
//!   modulated by respiration (the physical basis of EDR),
//! * peri-ictal autonomic programs — pre-ictal heart-rate ramp, ictal
//!   tachycardia with HRV suppression and respiration changes, post-ictal
//!   recovery,
//! * per-patient variability and realistic sensor noise.
//!
//! ## Example
//!
//! ```
//! use ecg_sim::dataset::{DatasetSpec, Scale};
//!
//! let spec = DatasetSpec::new(Scale::Tiny, 42);
//! assert_eq!(spec.sessions.len(), 6);
//! let rec = spec.sessions[0].synthesize();
//! assert!(rec.ecg.len() > 1000);
//! ```

pub mod dataset;
pub mod heart;
pub mod noise;
pub mod patient;
pub mod respiration;
pub mod rng;
pub mod seizure;
pub mod session;
pub mod waveform;

pub use dataset::{DatasetSpec, Scale};
pub use session::{SessionRecording, SessionSpec, WindowLabel};
