//! Sensor and physiological noise: baseline wander, mains interference,
//! white (electrode/amplifier) noise and intermittent EMG bursts.

use crate::rng::{normal, uniform};
use rand::Rng;

/// Additive noise generator configuration. All amplitudes are in mV,
/// relative to a nominal 1 mV R wave.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// White-noise standard deviation.
    pub white_std: f64,
    /// Peak baseline-wander amplitude (sum of slow sinusoids).
    pub wander_amp: f64,
    /// Mains (powerline) amplitude.
    pub mains_amp: f64,
    /// Mains frequency in Hz (50 in Europe).
    pub mains_hz: f64,
    /// Expected EMG bursts per hour.
    pub emg_bursts_per_hour: f64,
    /// EMG burst standard deviation.
    pub emg_std: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            white_std: 0.02,
            wander_amp: 0.10,
            mains_amp: 0.01,
            mains_hz: 50.0,
            emg_bursts_per_hour: 6.0,
            emg_std: 0.08,
        }
    }
}

impl NoiseModel {
    /// Adds all noise components to `ecg` in place (`fs` in Hz).
    pub fn apply<R: Rng + ?Sized>(&self, ecg: &mut [f64], fs: f64, rng: &mut R) {
        let n = ecg.len();
        if n == 0 {
            return;
        }
        let dur_s = n as f64 / fs;

        // Baseline wander: three slow sinusoids with random phase/freq.
        let wander: Vec<(f64, f64, f64)> = (0..3)
            .map(|_| {
                (
                    uniform(rng, 0.05, 0.45),
                    uniform(rng, 0.0, std::f64::consts::TAU),
                    self.wander_amp * uniform(rng, 0.2, 0.5),
                )
            })
            .collect();
        let mains_phase = uniform(rng, 0.0, std::f64::consts::TAU);

        // EMG burst schedule.
        let expected = self.emg_bursts_per_hour * dur_s / 3600.0;
        let n_bursts = poisson_knuth(rng, expected);
        let bursts: Vec<(usize, usize)> = (0..n_bursts)
            .map(|_| {
                let start = uniform(rng, 0.0, dur_s.max(0.001));
                let len_s = uniform(rng, 0.5, 3.0);
                (
                    (start * fs) as usize,
                    (((start + len_s) * fs) as usize).min(n),
                )
            })
            .collect();

        for (i, v) in ecg.iter_mut().enumerate() {
            let t = i as f64 / fs;
            for &(f, ph, a) in &wander {
                *v += a * (std::f64::consts::TAU * f * t + ph).sin();
            }
            *v += self.mains_amp * (std::f64::consts::TAU * self.mains_hz * t + mains_phase).sin();
            *v += normal(rng, 0.0, self.white_std);
        }
        for (s, e) in bursts {
            for v in ecg[s..e].iter_mut() {
                *v += normal(rng, 0.0, self.emg_std);
            }
        }
    }
}

/// Knuth's algorithm for small-λ Poisson sampling.
fn poisson_knuth<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0f64;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 10_000 {
            return k; // guard against pathological lambda
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::substream;

    #[test]
    fn noise_has_expected_magnitude() {
        let model = NoiseModel::default();
        let mut sig = vec![0.0f64; 8192];
        model.apply(&mut sig, 128.0, &mut substream(1, 0));
        let rms = biodsp::stats::rms(&sig);
        assert!(rms > 0.01 && rms < 0.3, "rms {rms}");
    }

    #[test]
    fn zero_noise_model_is_identity() {
        let model = NoiseModel {
            white_std: 0.0,
            wander_amp: 0.0,
            mains_amp: 0.0,
            emg_bursts_per_hour: 0.0,
            emg_std: 0.0,
            ..Default::default()
        };
        let mut sig = vec![1.0f64; 256];
        model.apply(&mut sig, 128.0, &mut substream(2, 0));
        assert!(sig.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn mains_component_is_at_mains_frequency() {
        let model = NoiseModel {
            white_std: 0.0,
            wander_amp: 0.0,
            mains_amp: 0.2,
            emg_bursts_per_hour: 0.0,
            ..Default::default()
        };
        let mut sig = vec![0.0f64; 4096];
        let fs = 256.0;
        model.apply(&mut sig, fs, &mut substream(3, 0));
        let spec = biodsp::psd::periodogram(&sig, fs, biodsp::window::WindowKind::Hann).unwrap();
        let peak = spec.peak_frequency().unwrap();
        assert!((peak - 50.0).abs() < 1.0, "peak {peak}");
    }

    #[test]
    fn empty_signal_is_tolerated() {
        let model = NoiseModel::default();
        let mut sig: Vec<f64> = vec![];
        model.apply(&mut sig, 128.0, &mut substream(4, 0));
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = substream(5, 0);
        let lambda = 4.0;
        let n = 3000;
        let total: usize = (0..n).map(|_| poisson_knuth(&mut rng, lambda)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - lambda).abs() < 0.2, "mean {mean}");
        assert_eq!(poisson_knuth(&mut rng, 0.0), 0);
    }
}
